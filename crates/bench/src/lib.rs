//! # sherman-bench — the experiment harness
//!
//! One binary per table/figure of the Sherman paper (see `src/bin/`), all built
//! on the shared runners in this library:
//!
//! * [`runner`] — end-to-end tree experiments: bulkload a cluster, drive it
//!   with a YCSB-style workload from many client threads, and report
//!   throughput, latency percentiles and the internal distributions used by
//!   Figure 14; also the pipelined read experiments that sweep the
//!   split-phase scheduler's in-flight depth (the `pipeline` binary),
//! * [`churnbench`] — sliding-window churn runs measuring structural deletes,
//!   reclamation and space amplification (beyond the paper, which never
//!   shrinks the tree),
//! * [`scenariobench`] — hostile-scenario runs (shifting hot spots, flash
//!   crowds, sequential appends, scans racing churn) under adaptive memory
//!   pressure: pool exhaustion with typed backpressure, and mid-run
//!   index-cache re-budgeting (the `scenario` binary),
//! * [`lockbench`] — the lock-service microbenchmarks behind Figure 2 and
//!   Figure 16 (no tree involved),
//! * [`offloadbench`] — the server-side traversal offload regime map
//!   (skew × cache budget × tree depth, client-side vs always-offload vs
//!   adaptive placement; the `offload` binary),
//! * [`fabricbench`] — raw `RDMA_WRITE` throughput versus IO size (Figure 3),
//! * [`report`] — plain-text table formatting,
//! * [`args`] — the tiny `--key value` command-line parser shared by the
//!   binaries (every experiment parameter can be overridden).
//!
//! All numbers are measured in the fabric simulator's virtual time; see
//! DESIGN.md for the calibration and EXPERIMENTS.md for paper-vs-measured
//! comparisons.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod args;
pub mod churnbench;
pub mod fabricbench;
pub mod lockbench;
pub mod offloadbench;
pub mod report;
pub mod runner;
pub mod scenariobench;

pub use args::Args;
pub use churnbench::{run_churn_experiment, run_churn_experiment_on, ChurnExperiment, ChurnResult};
pub use scenariobench::{
    hostile_suite, run_scenario_experiment, run_scenario_experiment_on, MemoryPressure,
    ScenarioExperiment, ScenarioResult,
};
pub use fabricbench::{run_write_size_sweep, WriteSizePoint};
pub use lockbench::{run_lock_experiment, LockExperiment, LockVariant};
pub use offloadbench::{run_offload_experiment, OffloadExperiment, OffloadResult};
pub use report::{fmt_mops, fmt_us, print_table};
pub use runner::{
    run_pipeline_experiment, run_tree_experiment, DrivePath, ExperimentResult,
    PipelineExperiment, PipelineResult, TreeExperiment,
};
