//! Raw fabric microbenchmark: `RDMA_WRITE` throughput versus IO size
//! (Figure 3 of the paper).

use sherman_metrics::RunSummary;
use sherman_metrics::{LatencyHistogram, ThreadReport, ThroughputAggregator};
use sherman_sim::{Fabric, FabricConfig, GlobalAddress, WriteCmd};
use std::sync::Arc;
use std::thread;

/// Number of `RDMA_WRITE` work requests posted per doorbell, modeling the
/// multiple outstanding WQEs a real throughput benchmark keeps in flight
/// (the paper's Figure 3 measures saturated NICs, not one-at-a-time verbs).
const WRITES_PER_DOORBELL: usize = 16;

/// One measured point of the IO-size sweep.
#[derive(Debug, Clone)]
pub struct WriteSizePoint {
    /// Payload size in bytes.
    pub io_bytes: usize,
    /// Throughput / latency summary at that size.
    pub summary: RunSummary,
}

/// Sweep `RDMA_WRITE` payload sizes and measure aggregate throughput.
///
/// `threads` writers spread across `compute_servers` hammer a single memory
/// server with back-to-back writes of each size in `sizes`.
pub fn run_write_size_sweep(
    sizes: &[usize],
    threads: usize,
    compute_servers: usize,
    ops_per_thread: usize,
) -> Vec<WriteSizePoint> {
    sizes
        .iter()
        .map(|&io_bytes| {
            let fabric = Fabric::new(FabricConfig {
                memory_servers: 1,
                compute_servers,
                ..FabricConfig::default()
            });
            let start = fabric.now();
            let barrier = Arc::new(std::sync::Barrier::new(threads));
            let mut handles = Vec::new();
            for t in 0..threads {
                let fabric = Arc::clone(&fabric);
                let barrier = Arc::clone(&barrier);
                handles.push(thread::spawn(move || {
                    let mut client = fabric.client((t % compute_servers) as u16);
                    barrier.wait();
                    let payload = vec![0xA5u8; io_bytes];
                    // Each thread writes to its own disjoint region so that no
                    // higher-level synchronization is involved.
                    let base = 1 << 20 | (t as u64) << 16;
                    let mut latency = LatencyHistogram::new();
                    let batches = ops_per_thread.div_ceil(WRITES_PER_DOORBELL);
                    for i in 0..batches {
                        let cmds: Vec<WriteCmd> = (0..WRITES_PER_DOORBELL)
                            .map(|j| {
                                let off =
                                    base + (((i * WRITES_PER_DOORBELL + j) * io_bytes) % 16_384) as u64;
                                WriteCmd::new(GlobalAddress::host(0, off), payload.clone())
                            })
                            .collect();
                        let t0 = client.now();
                        client.post_writes(&cmds).expect("write batch");
                        latency.record((client.now() - t0) / WRITES_PER_DOORBELL as u64);
                    }
                    ThreadReport {
                        ops: (batches * WRITES_PER_DOORBELL) as u64,
                        latency,
                    }
                }));
            }
            let mut agg = ThroughputAggregator::new();
            for h in handles {
                agg.add(&h.join().expect("fabric bench thread panicked"));
            }
            let elapsed = fabric.now().saturating_sub(start).max(1);
            WriteSizePoint {
                io_bytes,
                summary: agg.finish(elapsed),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_writes_sustain_higher_iops_than_large_writes() {
        let points = run_write_size_sweep(&[64, 4096], 4, 2, 100);
        assert_eq!(points.len(), 2);
        let small = points[0].summary.throughput_ops;
        let large = points[1].summary.throughput_ops;
        assert!(
            small > large * 2.0,
            "64 B writes ({small:.0} ops/s) should far out-run 4 KiB writes ({large:.0} ops/s)"
        );
    }
}
