//! Plain-text table formatting for experiment output.

/// Format a throughput value (operations per second) as Mops with two
/// decimals, the unit the paper uses.
pub fn fmt_mops(ops_per_sec: f64) -> String {
    format!("{:.2}", ops_per_sec / 1e6)
}

/// Format a latency in nanoseconds as microseconds with one decimal.
pub fn fmt_us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e3)
}

/// Print an aligned table with a header row.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_mops(31_800_000.0), "31.80");
        assert_eq!(fmt_mops(340_000.0), "0.34");
        assert_eq!(fmt_us(19_890_000), "19890.0");
        assert_eq!(fmt_us(4_900), "4.9");
    }

    #[test]
    fn print_table_does_not_panic_on_ragged_rows() {
        print_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
