//! Lock-service microbenchmarks (no tree): Figure 2 and Figure 16.
//!
//! A set of client threads acquires and releases locks drawn from a Zipfian
//! distribution over a fixed lock array on one memory server, exactly like the
//! paper's experiments (§3.2.2: "154 threads across 7 CSs acquire/release
//! 10240 locks residing in an MS"; §5.7: "176 threads across 8 CSs ...").

use sherman_locks::{
    GlobalLockKind, GlobalLockTable, HoclManager, HoclOptions, NodeLockManager,
    RemoteLockManager,
};
use sherman_memserver::MemoryPool;
use sherman_metrics::{LatencyHistogram, RunSummary, ThreadReport, ThroughputAggregator};
use sherman_sim::{Fabric, FabricConfig, GlobalAddress};
use sherman_workload::ZipfianGenerator;
use std::sync::Arc;
use std::thread;

/// Which rung of the lock-design ladder to measure (Figure 16's x-axis; the
/// first rung alone, swept over skew, is Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockVariant {
    /// Host-memory lock words, CAS acquire / FAA release, every thread remote.
    Baseline,
    /// Lock words in NIC on-chip memory, still every thread remote.
    OnChip,
    /// On-chip locks plus per-compute-server local lock tables (no queue, no
    /// handover).
    Hierarchical,
    /// Adds FIFO wait queues to the local lock tables.
    WaitQueue,
    /// Adds bounded lock handover — the full HOCL.
    Handover,
}

impl LockVariant {
    /// All rungs in presentation order with the paper's labels.
    pub fn ladder() -> [(&'static str, LockVariant); 5] {
        [
            ("BaseLine", LockVariant::Baseline),
            ("On-Chip", LockVariant::OnChip),
            ("Hierarchical Structure", LockVariant::Hierarchical),
            ("Wait Queue", LockVariant::WaitQueue),
            ("Handover", LockVariant::Handover),
        ]
    }
}

/// A lock microbenchmark configuration.
#[derive(Debug, Clone)]
pub struct LockExperiment {
    /// Label for result rows.
    pub name: String,
    /// Which lock design to measure.
    pub variant: LockVariant,
    /// Total client threads.
    pub threads: usize,
    /// Compute servers the threads are spread over.
    pub compute_servers: usize,
    /// Number of distinct locks (all on memory server 0, as in the paper).
    pub locks: u64,
    /// Zipfian skew of lock popularity (0 = uniform).
    pub theta: f64,
    /// Acquire/release pairs per thread.
    pub ops_per_thread: usize,
    /// Virtual nanoseconds spent inside the critical section.
    pub hold_ns: u64,
}

impl LockExperiment {
    /// Default scaled-down configuration (the paper uses 154–176 threads and
    /// 10240 locks; defaults here are smaller and overridable).
    pub fn default_scaled(variant: LockVariant) -> Self {
        LockExperiment {
            name: format!("{variant:?}"),
            variant,
            threads: 16,
            compute_servers: 4,
            locks: 1024,
            theta: 0.99,
            ops_per_thread: 250,
            hold_ns: 400,
        }
    }
}

enum Service {
    Direct(RemoteLockManager),
    Hocl(HoclManager),
}

impl Service {
    fn build(variant: LockVariant, pool: &Arc<MemoryPool>, compute_servers: usize) -> Self {
        match variant {
            LockVariant::Baseline => Service::Direct(RemoteLockManager::new(
                GlobalLockTable::new_host(pool, GlobalLockKind::HostCasFaa),
            )),
            LockVariant::OnChip => {
                Service::Direct(RemoteLockManager::new(GlobalLockTable::new_on_chip(pool)))
            }
            LockVariant::Hierarchical => Service::Hocl(HoclManager::new(
                GlobalLockTable::new_on_chip(pool),
                compute_servers,
                HoclOptions::structure_only(),
            )),
            LockVariant::WaitQueue => Service::Hocl(HoclManager::new(
                GlobalLockTable::new_on_chip(pool),
                compute_servers,
                HoclOptions::with_wait_queue(),
            )),
            LockVariant::Handover => Service::Hocl(HoclManager::new(
                GlobalLockTable::new_on_chip(pool),
                compute_servers,
                HoclOptions::default(),
            )),
        }
    }
}

/// Synthetic "node" address representing lock slot `slot`: distinct node-sized
/// addresses on memory server 0 that the lock tables hash onto their slots.
fn slot_address(slot: u64) -> GlobalAddress {
    GlobalAddress::host(0, (1 << 20) | (slot * 1024))
}

/// Run one lock microbenchmark and summarize throughput and latency of the
/// acquire→release cycle.
pub fn run_lock_experiment(exp: &LockExperiment) -> RunSummary {
    let fabric = Fabric::new(FabricConfig {
        memory_servers: 1,
        compute_servers: exp.compute_servers,
        ..FabricConfig::default()
    });
    let pool = MemoryPool::new(Arc::clone(&fabric), 1 << 20);
    let service = Arc::new(Service::build(exp.variant, &pool, exp.compute_servers));

    let start = fabric.now();
    // All workers must have registered with the virtual clock before any of
    // them starts issuing operations; otherwise early threads run their whole
    // workload uncontended and the experiment measures nothing.
    let barrier = Arc::new(std::sync::Barrier::new(exp.threads));
    let mut handles = Vec::new();
    for t in 0..exp.threads {
        let fabric = Arc::clone(&fabric);
        let service = Arc::clone(&service);
        let barrier = Arc::clone(&barrier);
        let exp = exp.clone();
        handles.push(thread::spawn(move || {
            let cs = (t % exp.compute_servers) as u16;
            let mut client = fabric.client(cs);
            barrier.wait();
            let zipf = ZipfianGenerator::new(exp.locks, exp.theta);
            let mut rng = {
                use rand::SeedableRng;
                rand::rngs::StdRng::seed_from_u64(0xC0FFEE ^ t as u64)
            };
            let mut latency = LatencyHistogram::new();
            for _ in 0..exp.ops_per_thread {
                let slot = zipf.next_rank(&mut rng);
                let node = slot_address(slot);
                let t0 = client.now();
                match service.as_ref() {
                    Service::Direct(mgr) => {
                        mgr.acquire(&mut client, node).expect("acquire");
                        client.charge_cpu(exp.hold_ns);
                        mgr.release(&mut client, node, Vec::new(), true)
                            .expect("release");
                    }
                    Service::Hocl(mgr) => {
                        mgr.acquire(&mut client, node).expect("acquire");
                        client.charge_cpu(exp.hold_ns);
                        mgr.release(&mut client, node, Vec::new(), true)
                            .expect("release");
                    }
                }
                latency.record(client.now() - t0);
            }
            ThreadReport {
                ops: exp.ops_per_thread as u64,
                latency,
            }
        }));
    }
    let mut agg = ThroughputAggregator::new();
    for h in handles {
        agg.add(&h.join().expect("lock bench thread panicked"));
    }
    let elapsed = fabric.now().saturating_sub(start).max(1);
    agg.finish(elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(variant: LockVariant, theta: f64) -> LockExperiment {
        LockExperiment {
            threads: 4,
            compute_servers: 2,
            locks: 64,
            theta,
            ops_per_thread: 60,
            ..LockExperiment::default_scaled(variant)
        }
    }

    #[test]
    fn all_variants_complete_and_report() {
        for (_, variant) in LockVariant::ladder() {
            let summary = run_lock_experiment(&tiny(variant, 0.9));
            assert_eq!(summary.ops, 4 * 60);
            assert!(summary.throughput_ops > 0.0);
            assert!(summary.p99_ns >= summary.p50_ns);
        }
    }

    #[test]
    fn onchip_beats_baseline_under_contention() {
        let baseline = run_lock_experiment(&tiny(LockVariant::Baseline, 0.99));
        let onchip = run_lock_experiment(&tiny(LockVariant::OnChip, 0.99));
        assert!(
            onchip.throughput_ops > baseline.throughput_ops,
            "on-chip {} vs baseline {}",
            onchip.throughput_ops,
            baseline.throughput_ops
        );
    }

    #[test]
    fn full_hocl_beats_onchip_under_contention() {
        // HOCL's advantage comes from queueing same-compute-server threads
        // locally, so give each compute server several threads and make the
        // hottest locks genuinely contended.
        let contended = |variant| LockExperiment {
            threads: 8,
            compute_servers: 2,
            locks: 16,
            theta: 0.99,
            ops_per_thread: 80,
            hold_ns: 1_000,
            ..LockExperiment::default_scaled(variant)
        };
        let onchip = run_lock_experiment(&contended(LockVariant::OnChip));
        let hocl = run_lock_experiment(&contended(LockVariant::Handover));
        assert!(
            hocl.throughput_ops > onchip.throughput_ops,
            "HOCL {} vs on-chip {}",
            hocl.throughput_ops,
            onchip.throughput_ops
        );
    }
}
