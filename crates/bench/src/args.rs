//! Minimal `--key value` command-line parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from `std::env::args` (skipping the program name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (used by tests).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                continue;
            };
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    values.insert(name.to_string(), iter.next().unwrap());
                }
                _ => flags.push(name.to_string()),
            }
        }
        Args { values, flags }
    }

    /// Whether a bare flag (e.g. `--quick`) was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// String value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// `u64` value of `--name`, or `default`.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// `usize` value of `--name`, or `default`.
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// `f64` value of `--name`, or `default`.
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Common scale factor: `--quick` shrinks experiments for smoke runs.
    pub fn quick(&self) -> bool {
        self.flag("quick")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn values_flags_and_defaults() {
        let a = parse("--threads 8 --theta 0.99 --quick --keys 100000");
        assert_eq!(a.get_u64("threads", 1), 8);
        assert_eq!(a.get_usize("threads", 1), 8);
        assert!((a.get_f64("theta", 0.0) - 0.99).abs() < 1e-9);
        assert_eq!(a.get_u64("keys", 0), 100_000);
        assert!(a.flag("quick"));
        assert!(a.quick());
        assert_eq!(a.get_u64("missing", 7), 7);
        assert!(!a.flag("verbose"));
    }

    #[test]
    fn malformed_input_is_ignored() {
        let a = parse("stray --flag --x 3");
        assert!(a.flag("flag"));
        assert_eq!(a.get_u64("x", 0), 3);
        assert_eq!(a.get("stray"), None);
    }
}
