//! Pipeline — the split-phase scheduler's depth sweep (beyond the paper).
//!
//! Sherman's evaluation hides RDMA round-trip latency by running multiple
//! coroutines per client thread; this reproduction's analogue is the
//! pipelined read scheduler (`TreeClient::run_pipelined`), which multiplexes
//! N logical lookups/scans over one fabric context.  This binary sweeps the
//! in-flight depth over {1, 2, 4, 8} on the uniform-lookup workload and
//! reports the virtual-time throughput curve next to the blocking reference,
//! plus the overlap gauges that prove the depth actually materialized
//! (mean/max in-flight verbs, overlapped round trips, serial-vs-elapsed
//! overlap factor).
//!
//! ```text
//! cargo run --release -p sherman_bench --bin pipeline [-- --quick] [--smoke]
//!     [--threads N] [--keys N] [--ops N] [--range-pct P] [--insert-pct P]
//!     [--depths 1,2,4,8]
//! ```
//!
//! `--smoke` runs the CI gate at `--quick` scale and exits non-zero when
//! depth 1 deviates from the blocking path by more than 5%, when depth 4
//! fails to beat depth 1 by at least 1.5× on uniform lookups, or when the
//! overlap gauges show the pipeline never went concurrent (mean in-flight
//! ≤ 1.5 at depth 4).  The gate then repeats the sweep on a 50%-insert
//! uniform workload — write pipelining with lock-atomic critical sections —
//! requiring depth-1 equivalence within 5% and a depth-4 speedup of at
//! least 1.3×.

use sherman_bench::{fmt_mops, fmt_us, print_table, run_pipeline_experiment, Args, PipelineExperiment};

fn main() {
    let args = Args::from_env();
    if args.flag("smoke") {
        smoke(&args);
        return;
    }
    let depths: Vec<usize> = args
        .get("depths")
        .map(|s| s.split(',').filter_map(|d| d.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);

    println!("Pipeline: split-phase read scheduler, in-flight depth sweep (uniform lookups)");
    let blocking = run_pipeline_experiment(&configure(&args, "blocking", 0));
    let base = blocking.summary.throughput_ops;
    let mut rows = vec![row(&blocking, base)];
    for &depth in &depths {
        let result = run_pipeline_experiment(&configure(&args, &format!("depth-{depth}"), depth));
        rows.push(row(&result, base));
    }
    print_table(
        &[
            "system",
            "Mops",
            "vs blocking",
            "p50",
            "p99",
            "mean-inflight",
            "max",
            "overlapped-rt",
            "overlap-x",
        ],
        &rows,
    );
    println!("\nvs blocking  = virtual-time throughput relative to the blocking client loop");
    println!("mean/max     = in-flight verb depth at post time (1.0 when blocking)");
    println!("overlapped-rt= fraction of round trips whose window overlapped another verb");
    println!("overlap-x    = serial verb time / elapsed time (how many RTTs were hidden)");
}

fn configure(args: &Args, name: &str, depth: usize) -> PipelineExperiment {
    let mut exp = PipelineExperiment::default_scaled(name, depth);
    exp.threads = args.get_usize("threads", exp.threads);
    exp.key_space = args.get_u64("keys", exp.key_space);
    exp.ops_per_thread = args.get_usize("ops", exp.ops_per_thread);
    exp.range_pct = args.get_u64("range-pct", exp.range_pct as u64) as u8;
    exp.range_size = args.get_u64("range-size", exp.range_size);
    exp.insert_pct = args.get_u64("insert-pct", exp.insert_pct as u64) as u8;
    if args.quick() || args.flag("smoke") {
        exp = exp.quick();
    }
    exp
}

fn row(result: &sherman_bench::PipelineResult, base: f64) -> Vec<String> {
    vec![
        result.name.clone(),
        fmt_mops(result.summary.throughput_ops),
        format!("{:.2}x", result.summary.throughput_ops / base.max(f64::MIN_POSITIVE)),
        fmt_us(result.summary.p50_ns),
        fmt_us(result.summary.p99_ns),
        format!("{:.2}", result.overlap.mean_in_flight()),
        result.overlap.max_in_flight.to_string(),
        format!("{:.0}%", result.overlap.overlapped_fraction() * 100.0),
        format!("{:.2}", result.overlap.overlap_factor()),
    ]
}

/// CI gate: depth-1 equivalence and the depth-4 speedup, at quick scale —
/// once on uniform lookups (≥ 1.5×) and once on a 50%-insert mixed workload
/// (≥ 1.3×, critical sections bound the attainable overlap).
fn smoke(args: &Args) {
    let mut failures = Vec::new();
    smoke_case(args, "reads", 0, 1.5, &mut failures);
    smoke_case(args, "mixed-50i", 50, 1.3, &mut failures);
    if failures.is_empty() {
        println!("pipeline smoke: OK");
    } else {
        for f in &failures {
            eprintln!("pipeline smoke FAILED: {f}");
        }
        std::process::exit(1);
    }
}

fn smoke_case(
    args: &Args,
    case: &str,
    insert_pct: u8,
    min_speedup: f64,
    failures: &mut Vec<String>,
) {
    let with_writes = |mut exp: PipelineExperiment| {
        exp.insert_pct = insert_pct;
        exp
    };
    let blocking = run_pipeline_experiment(&with_writes(configure(args, "blocking", 0)));
    let depth1 = run_pipeline_experiment(&with_writes(configure(args, "depth-1", 1)));
    let depth4 = run_pipeline_experiment(&with_writes(configure(args, "depth-4", 4)));

    let equivalence = depth1.summary.throughput_ops / blocking.summary.throughput_ops;
    let speedup = depth4.summary.throughput_ops / depth1.summary.throughput_ops;
    println!(
        "pipeline smoke [{case}]: blocking={} depth1={} depth4={} equivalence={:.3} \
         speedup={:.2}x mean_inflight(d4)={:.2} max_inflight(d4)={} overlapped(d4)={:.0}%",
        fmt_mops(blocking.summary.throughput_ops),
        fmt_mops(depth1.summary.throughput_ops),
        fmt_mops(depth4.summary.throughput_ops),
        equivalence,
        speedup,
        depth4.overlap.mean_in_flight(),
        depth4.overlap.max_in_flight,
        depth4.overlap.overlapped_fraction() * 100.0,
    );
    if !(0.95..=1.05).contains(&equivalence) {
        failures.push(format!(
            "[{case}] depth-1 deviates from the blocking path by more than 5% \
             (ratio {equivalence:.3})"
        ));
    }
    if speedup < min_speedup {
        failures.push(format!(
            "[{case}] depth-4 throughput only {speedup:.2}x depth-1 (needs >= {min_speedup}x)"
        ));
    }
    if depth4.overlap.mean_in_flight() <= 1.5 {
        failures.push(format!(
            "[{case}] depth-4 mean in-flight {:.2} shows no real overlap (needs > 1.5)",
            depth4.overlap.mean_in_flight()
        ));
    }
}
