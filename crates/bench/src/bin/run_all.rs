//! Run every figure/table binary in quick mode — a one-command regeneration of
//! the whole evaluation at smoke-test scale.
//!
//! ```text
//! cargo run --release -p sherman-bench --bin run_all [-- --full]
//! ```

use std::process::Command;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let binaries = [
        "table1",
        "fig2_lock_collapse",
        "fig3_write_size",
        "fig10_ablation_skew",
        "fig11_ablation_uniform",
        "fig12_range",
        "fig13_scalability",
        "fig14_internal",
        "fig15_sensitivity",
        "fig16_hocl",
        "churn",
        "pipeline",
        "scenario",
    ];
    for bin in binaries {
        println!("\n================ {bin} ================");
        let path = exe_dir.join(bin);
        let mut cmd = Command::new(&path);
        if !full {
            cmd.arg("--quick");
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => eprintln!("{bin} exited with {status}"),
            Err(e) => eprintln!("failed to launch {}: {e}", path.display()),
        }
    }
}
