//! Figure 10 — contribution of each technique under *skewed* workloads
//! (Zipfian 0.99): FG+ → +Combine → +On-Chip → +Hierarchical → +2-Level Ver,
//! for the write-only, write-intensive and read-intensive mixes.
//!
//! ```text
//! cargo run --release -p sherman-bench --bin fig10_ablation_skew [-- --quick]
//! ```

use sherman::TreeOptions;
use sherman_bench::{fmt_mops, fmt_us, print_table, run_tree_experiment, Args, TreeExperiment};
use sherman_workload::{KeyDistribution, Mix};

fn main() {
    let args = Args::from_env();
    run_ablation(
        &args,
        KeyDistribution::ScrambledZipfian { theta: args.get_f64("theta", 0.99) },
        "Figure 10: ablation under skewed workloads (theta=0.99)",
    );
}

/// Shared by fig10 (skew) and fig11 (uniform).
pub fn run_ablation(args: &Args, distribution: KeyDistribution, title: &str) {
    let mixes = [
        ("write-only", Mix::WRITE_ONLY),
        ("write-intensive", Mix::WRITE_INTENSIVE),
        ("read-intensive", Mix::READ_INTENSIVE),
    ];
    println!("{title}");
    for (mix_name, mix) in mixes {
        println!("\n[{mix_name}]");
        let mut rows = Vec::new();
        for (label, options) in TreeOptions::ablation_ladder() {
            let mut exp = TreeExperiment::default_scaled(label, options);
            exp.mix = mix;
            exp.distribution = distribution;
            exp.threads = args.get_usize("threads", exp.threads);
            exp.key_space = args.get_u64("keys", exp.key_space);
            exp.ops_per_thread = args.get_usize("ops", exp.ops_per_thread);
            if args.quick() {
                exp = exp.quick();
            }
            let r = run_tree_experiment(&exp);
            rows.push(vec![
                label.to_string(),
                fmt_mops(r.summary.throughput_ops),
                fmt_us(r.summary.p50_ns),
                fmt_us(r.summary.p99_ns),
                format!("{:.0}%", r.handover_fraction * 100.0),
            ]);
        }
        print_table(
            &["configuration", "throughput (Mops)", "p50 (us)", "p99 (us)", "handover"],
            &rows,
        );
    }
}
