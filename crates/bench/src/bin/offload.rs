//! Offload — the server-side traversal placement regime map (beyond the paper).
//!
//! Sherman traverses the tree from the client with one-sided READs; a cold
//! index cache turns every lookup into a chain of dependent round trips, one
//! per level.  This reproduction adds FlexKV/Outback-style index offloading:
//! a cache-missed descent can instead ship one typed `TraverseStep` RPC to
//! the home memory server, whose bounded interpreter walks its local node
//! images and replies with the leaf — O(1) fabric round trips however deep
//! the tree.  Offload is not free (the RPC is charged server-side work and
//! loses to a warm cache hit that needs only one READ), so the interesting
//! question is *where* each placement wins.  This binary sweeps the regime
//! map — skew × cache budget × tree depth (plus a far-fabric variant of the
//! deep point, since the RTT-to-service ratio is what moves the crossover)
//! — for the three policies (`Never` = pure client-side, `Always`,
//! `Adaptive`) and reports the crossover.
//!
//! ```text
//! cargo run --release -p sherman_bench --bin offload [-- --quick] [--smoke]
//!     [--threads N] [--ops N]
//! ```
//!
//! `--smoke` runs the CI gate at quick scale and exits non-zero when
//! (1) the adaptive policy falls more than 5% behind the best fixed policy
//! on the cold-cache deep-tree far-fabric point, (2) a cold-cache lookup under `Always`
//! costs anything other than exactly one fabric round trip — one RPC and
//! zero one-sided READs — or (3) any lookup disagrees with a model of the
//! tree after an insert/delete churn phase followed by a coherence quiesce
//! (server-side replies must never smuggle stale state past the tombstone
//! admission floor).

use sherman_bench::{
    fmt_mops, fmt_us, print_table, run_offload_experiment, Args, OffloadExperiment,
};
use sherman::{Cluster, ClusterConfig, OffloadPolicy, TreeConfig, TreeOptions};
use sherman_sim::FabricConfig;
use sherman_workload::KeyDistribution;

const POLICIES: [OffloadPolicy; 3] = [
    OffloadPolicy::Never,
    OffloadPolicy::Always,
    OffloadPolicy::Adaptive,
];

fn main() {
    let args = Args::from_env();
    if args.flag("smoke") {
        smoke(&args);
        return;
    }

    println!("Offload: server-side traversal placement regime map (100% lookups)");
    let mut rows = Vec::new();
    for &(depth_name, node_size, key_space, rtt) in &[
        ("shallow", 1024usize, 1u64 << 13, None),
        ("deep", 256, 1 << 16, None),
        ("deep-far", 256, 1 << 16, Some(5_000u64)),
    ] {
        for &(skew_name, dist) in &[
            ("uniform", KeyDistribution::Uniform),
            ("zipf-0.99", KeyDistribution::ScrambledZipfian { theta: 0.99 }),
        ] {
            for &(cache_name, cold) in &[("warm", false), ("cold", true)] {
                let mut results = Vec::new();
                for &policy in &POLICIES {
                    let mut exp = configure(
                        &args, policy, node_size, key_space, dist, cold,
                    );
                    exp.base_rtt_ns = rtt;
                    results.push(run_offload_experiment(&exp));
                }
                let best = results
                    .iter()
                    .max_by(|a, b| {
                        a.summary
                            .throughput_ops
                            .total_cmp(&b.summary.throughput_ops)
                    })
                    .expect("three results");
                let adaptive = &results[2];
                rows.push(vec![
                    format!("{depth_name}/{skew_name}/{cache_name}"),
                    fmt_mops(results[0].summary.throughput_ops),
                    fmt_mops(results[1].summary.throughput_ops),
                    fmt_mops(results[2].summary.throughput_ops),
                    format!("{:?}", best.policy),
                    format!("{:.0}%", adaptive.offload.offload_ratio() * 100.0),
                    format!("{:.2}", adaptive.mean_round_trips),
                    fmt_us(adaptive.summary.p50_ns),
                ]);
            }
        }
    }
    print_table(
        &[
            "regime",
            "never",
            "always",
            "adaptive",
            "winner",
            "ad-offload",
            "ad-rt/op",
            "ad-p50",
        ],
        &rows,
    );
    println!("\nnever/always/adaptive = lookup throughput (Mops) under each placement policy");
    println!("ad-offload = fraction of adaptive placement decisions that chose the RPC");
    println!("ad-rt/op   = adaptive mean fabric round trips per lookup (1.0 = offload ideal)");
}

fn configure(
    args: &Args,
    policy: OffloadPolicy,
    node_size: usize,
    key_space: u64,
    dist: KeyDistribution,
    cold: bool,
) -> OffloadExperiment {
    let mut exp = OffloadExperiment::default_scaled(format!("{policy:?}"), policy);
    exp.tree.node_size = node_size;
    exp.key_space = key_space;
    exp.distribution = dist;
    exp.cold_start = cold;
    if cold {
        // The cold regime also starves the type-1 cache so it cannot rewarm
        // past a handful of routes during the measured phase.
        exp.tree.cache_bytes = 4 << 10;
    }
    exp.threads = args.get_usize("threads", exp.threads);
    exp.ops_per_thread = args.get_usize("ops", exp.ops_per_thread);
    if args.quick() || args.flag("smoke") {
        exp = exp.quick();
    }
    exp
}

/// CI gate: the adaptive crossover, the O(1) cold lookup, and churn
/// coherence — at quick scale.
fn smoke(args: &Args) {
    let mut failures = Vec::new();
    smoke_adaptive_crossover(args, &mut failures);
    smoke_cold_lookup_is_one_round_trip(&mut failures);
    smoke_churn_serves_no_stale_results(&mut failures);
    if failures.is_empty() {
        println!("offload smoke: OK");
    } else {
        for f in &failures {
            eprintln!("offload smoke FAILED: {f}");
        }
        std::process::exit(1);
    }
}

/// Gate 1: on the cold-cache deep-tree point the adaptive policy must hold
/// at least 95% of whichever fixed placement wins.
fn smoke_adaptive_crossover(args: &Args, failures: &mut Vec<String>) {
    let run = |policy| {
        // Built by hand rather than through `configure`: the gate needs the
        // full-depth tree (quick() caps the key space), just fewer ops.  The
        // point sits on a far fabric — RPC offload's home regime, where one
        // round trip plus server work clearly beats a chain of client RTTs.
        let mut exp = OffloadExperiment::default_scaled("smoke", policy);
        exp.cold_start = true;
        exp.tree.cache_bytes = 4 << 10;
        exp.base_rtt_ns = Some(5_000);
        exp.threads = args.get_usize("threads", 2);
        exp.ops_per_thread = args.get_usize("ops", 400);
        run_offload_experiment(&exp)
    };
    let never = run(OffloadPolicy::Never);
    let always = run(OffloadPolicy::Always);
    let adaptive = run(OffloadPolicy::Adaptive);
    let best = never
        .summary
        .throughput_ops
        .max(always.summary.throughput_ops);
    let ratio = adaptive.summary.throughput_ops / best.max(f64::MIN_POSITIVE);
    println!(
        "offload smoke [crossover]: never={} always={} adaptive={} ratio-vs-best={:.3} \
         adaptive-offload={:.0}%",
        fmt_mops(never.summary.throughput_ops),
        fmt_mops(always.summary.throughput_ops),
        fmt_mops(adaptive.summary.throughput_ops),
        ratio,
        adaptive.offload.offload_ratio() * 100.0,
    );
    if ratio < 0.95 {
        failures.push(format!(
            "[crossover] adaptive holds only {ratio:.3} of the best fixed policy \
             (needs >= 0.95)"
        ));
    }
}

/// A small cluster whose tree is several levels deep: 256-byte nodes over a
/// 12k-key bulkload.
fn smoke_cluster(policy: OffloadPolicy) -> std::sync::Arc<Cluster> {
    let config = ClusterConfig {
        fabric: FabricConfig {
            memory_servers: 2,
            compute_servers: 2,
            ..FabricConfig::default()
        },
        tree: TreeConfig {
            node_size: 256,
            chunk_bytes: 256 << 10,
            ..TreeConfig::default()
        },
    };
    let cluster = Cluster::new(config, TreeOptions::sherman().with_offload(policy));
    cluster
        .bulkload((0..12_000u64).map(|k| (k, k.wrapping_mul(7) + 1)))
        .expect("bulkload");
    cluster
}

/// Gate 2: with every cached route dropped, an `Always` lookup must collapse
/// the whole multi-level descent into exactly one fabric round trip — one
/// typed RPC, zero one-sided READs.
fn smoke_cold_lookup_is_one_round_trip(failures: &mut Vec<String>) {
    let cluster = smoke_cluster(OffloadPolicy::Always);
    for cs in 0..2 {
        cluster.cache(cs).clear();
    }
    let mut client = cluster.client(0);
    let (value, stats) = client.lookup(6_000).expect("lookup");
    println!(
        "offload smoke [cold-lookup]: round_trips={} rpcs={} reads={} value={value:?}",
        stats.round_trips, stats.rpcs, stats.reads
    );
    if value != Some(6_000u64.wrapping_mul(7) + 1) {
        failures.push(format!("[cold-lookup] wrong value {value:?}"));
    }
    if stats.round_trips != 1 || stats.rpcs != 1 || stats.reads != 0 {
        failures.push(format!(
            "[cold-lookup] cost must be exactly one RPC round trip, got \
             round_trips={} rpcs={} reads={}",
            stats.round_trips, stats.rpcs, stats.reads
        ));
    }
}

/// Gate 3: drive insert/delete churn under `Always` offload while checking
/// every lookup against an in-process model, then quiesce coherence and
/// re-verify — a server-side reply must never surface a stale (freed or
/// recycled) node past the client's tombstone admission floor.
fn smoke_churn_serves_no_stale_results(failures: &mut Vec<String>) {
    use rand::{Rng, SeedableRng};

    let cluster = smoke_cluster(OffloadPolicy::Always);
    let mut model: std::collections::HashMap<u64, u64> =
        (0..12_000u64).map(|k| (k, k.wrapping_mul(7) + 1)).collect();
    let mut client = cluster.client(0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x57A1E);
    let mut wrong = 0u64;
    for i in 0..2_000u64 {
        let key = rng.gen_range(0..16_000u64);
        match rng.gen_range(0..100u8) {
            0..=39 => {
                let value = i.wrapping_mul(13) + key;
                client.insert(key, value).expect("insert");
                model.insert(key, value);
            }
            40..=59 => {
                let (deleted, _) = client.delete(key).expect("delete");
                let expected = model.remove(&key).is_some();
                if deleted != expected {
                    wrong += 1;
                }
            }
            _ => {
                let (value, _) = client.lookup(key).expect("lookup");
                if value != model.get(&key).copied() {
                    wrong += 1;
                }
            }
        }
    }
    client.quiesce_coherence();
    for key in (0..16_000u64).step_by(7) {
        let (value, _) = client.lookup(key).expect("lookup");
        if value != model.get(&key).copied() {
            wrong += 1;
        }
    }
    let gauges = cluster.offload_stats();
    println!(
        "offload smoke [churn]: wrong={} offloaded={} wins={} losses={} stale_rejects={}",
        wrong, gauges.offloaded, gauges.wins, gauges.losses, gauges.stale_rejects
    );
    if wrong > 0 {
        failures.push(format!(
            "[churn] {wrong} operations disagreed with the model after churn + quiesce"
        ));
    }
    if gauges.offloaded == 0 {
        failures.push("[churn] the churn phase never offloaded; gate proved nothing".into());
    }
}
