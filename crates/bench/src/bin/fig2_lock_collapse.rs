//! Figure 2 — RDMA-based exclusive locks (host-memory CAS/FAA) collapse under
//! contention as the Zipfian parameter grows.
//!
//! ```text
//! cargo run --release -p sherman-bench --bin fig2_lock_collapse [-- --quick --threads N --locks N]
//! ```

use sherman_bench::{fmt_mops, fmt_us, print_table, run_lock_experiment, Args, LockExperiment, LockVariant};

fn main() {
    let args = Args::from_env();
    let thetas = [0.0, 0.8, 0.9, 0.95, 0.99];

    println!("Figure 2: RDMA-based exclusive locks vs contention degree (baseline design)");
    let mut rows = Vec::new();
    for theta in thetas {
        let mut exp = LockExperiment::default_scaled(LockVariant::Baseline);
        exp.theta = theta;
        exp.threads = args.get_usize("threads", exp.threads);
        exp.locks = args.get_u64("locks", exp.locks);
        exp.ops_per_thread = args.get_usize("ops", exp.ops_per_thread);
        if args.quick() {
            exp.threads = exp.threads.min(6);
            exp.ops_per_thread = exp.ops_per_thread.min(100);
        }
        let s = run_lock_experiment(&exp);
        rows.push(vec![
            format!("{theta:.2}"),
            fmt_mops(s.throughput_ops),
            fmt_us(s.p50_ns),
            fmt_us(s.p99_ns),
        ]);
    }
    print_table(
        &["zipfian theta", "throughput (Mops)", "p50 (us)", "p99 (us)"],
        &rows,
    );
}
