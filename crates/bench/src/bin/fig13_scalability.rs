//! Figure 13 — scalability with the number of client threads under the
//! write-intensive mix: uniform, Zipfian 0.9 and Zipfian 0.99 popularity,
//! FG+ versus Sherman.
//!
//! ```text
//! cargo run --release -p sherman-bench --bin fig13_scalability [-- --quick --max-threads N]
//! ```

use sherman::TreeOptions;
use sherman_bench::{fmt_mops, print_table, run_tree_experiment, Args, TreeExperiment};
use sherman_workload::KeyDistribution;

fn main() {
    let args = Args::from_env();
    let max_threads = args.get_usize("max-threads", if args.quick() { 8 } else { 24 });
    let mut thread_counts = vec![2usize, 4, 8, 16, 24, 32, 48, 64];
    thread_counts.retain(|&t| t <= max_threads);
    let scenarios = [
        ("uniform", KeyDistribution::Uniform),
        ("skew 0.9", KeyDistribution::ScrambledZipfian { theta: 0.9 }),
        ("skew 0.99", KeyDistribution::ScrambledZipfian { theta: 0.99 }),
    ];
    let systems = [("FG+", TreeOptions::fg_plus()), ("Sherman", TreeOptions::sherman())];

    println!("Figure 13: scalability with client threads (write-intensive)");
    for (scenario, distribution) in scenarios {
        println!("\n[{scenario}]");
        let mut rows = Vec::new();
        for &threads in &thread_counts {
            let mut row = vec![threads.to_string()];
            for (sys_name, options) in systems {
                let mut exp = TreeExperiment::default_scaled(
                    format!("{sys_name}/{threads}"),
                    options,
                );
                exp.distribution = distribution;
                exp.threads = threads;
                exp.key_space = args.get_u64("keys", exp.key_space);
                exp.ops_per_thread =
                    args.get_usize("ops", if args.quick() { 60 } else { 200 });
                let r = run_tree_experiment(&exp);
                row.push(fmt_mops(r.summary.throughput_ops));
            }
            rows.push(row);
        }
        print_table(&["threads", "FG+ (Mops)", "Sherman (Mops)"], &rows);
    }
}
