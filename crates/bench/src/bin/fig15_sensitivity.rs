//! Figure 15 — sensitivity analysis:
//!
//! * (a) key size from 16 B to 1 KB under uniform write-intensive load
//!   (the number of entries per leaf is fixed at 32 by growing the node),
//! * (b) the same under skewed load,
//! * (c) index-cache capacity versus throughput and hit ratio.
//!
//! ```text
//! cargo run --release -p sherman-bench --bin fig15_sensitivity [-- --quick]
//! ```

use sherman::{TreeConfig, TreeOptions};
use sherman_bench::{fmt_mops, print_table, run_tree_experiment, Args, TreeExperiment};
use sherman_workload::{KeyDistribution, Mix};

/// Node size that keeps 32 entries per leaf for a given key size (the paper
/// fixes the entry count and grows the node).
fn node_size_for(key_size: usize, value_size: usize) -> usize {
    let entry = key_size + value_size + 3;
    let raw = 48 + 8 + 32 * entry;
    raw.next_multiple_of(64)
}

fn key_size_sweep(args: &Args, distribution: KeyDistribution, title: &str) {
    println!("{title}");
    let key_sizes = [16usize, 32, 64, 128, 256, 512, 1024];
    let mut rows = Vec::new();
    for key_size in key_sizes {
        let mut row = vec![key_size.to_string()];
        for (name, options) in [("FG+", TreeOptions::fg_plus()), ("Sherman", TreeOptions::sherman())] {
            let mut exp = TreeExperiment::default_scaled(format!("{name}/{key_size}"), options);
            exp.mix = Mix::WRITE_INTENSIVE;
            exp.distribution = distribution;
            exp.key_space = args.get_u64("keys", 1 << 16);
            exp.threads = args.get_usize("threads", 8);
            exp.ops_per_thread = args.get_usize("ops", if args.quick() { 60 } else { 200 });
            exp.tree = TreeConfig {
                node_size: node_size_for(key_size, 8),
                key_size,
                chunk_bytes: 4 << 20,
                ..TreeConfig::default()
            };
            if args.quick() {
                exp.threads = exp.threads.min(4);
            }
            let r = run_tree_experiment(&exp);
            row.push(fmt_mops(r.summary.throughput_ops));
        }
        rows.push(row);
    }
    print_table(&["key size (B)", "FG+ (Mops)", "Sherman (Mops)"], &rows);
}

fn cache_sweep(args: &Args) {
    println!("\nFigure 15(c): impact of index cache size (uniform, write-intensive)");
    let sizes_kb = [64usize, 128, 256, 512, 1024, 4096];
    let mut rows = Vec::new();
    for kb in sizes_kb {
        let mut exp = TreeExperiment::default_scaled(format!("cache-{kb}KB"), TreeOptions::sherman());
        exp.mix = Mix::WRITE_INTENSIVE;
        exp.distribution = KeyDistribution::Uniform;
        exp.key_space = args.get_u64("keys", if args.quick() { 1 << 17 } else { 1 << 19 });
        exp.threads = args.get_usize("threads", if args.quick() { 4 } else { 8 });
        exp.ops_per_thread = args.get_usize("ops", if args.quick() { 60 } else { 200 });
        exp.tree.cache_bytes = kb << 10;
        let r = run_tree_experiment(&exp);
        rows.push(vec![
            kb.to_string(),
            fmt_mops(r.summary.throughput_ops),
            format!("{:.1}%", r.cache_hit_ratio * 100.0),
        ]);
    }
    print_table(&["cache size (KB)", "throughput (Mops)", "hit ratio"], &rows);
}

fn main() {
    let args = Args::from_env();
    key_size_sweep(
        &args,
        KeyDistribution::Uniform,
        "Figure 15(a): impact of key size (uniform, 32 entries per leaf)",
    );
    println!();
    key_size_sweep(
        &args,
        KeyDistribution::ScrambledZipfian { theta: 0.99 },
        "Figure 15(b): impact of key size (skewed, 32 entries per leaf)",
    );
    cache_sweep(&args);
}
