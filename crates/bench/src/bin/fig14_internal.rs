//! Figure 14 — in-depth analysis with internal metrics under the
//! write-intensive, skewed (0.99) workload:
//!
//! * (a) retry counts of read operations,
//! * (b) CDF of round trips per write operation,
//! * (c) bytes written per write operation.
//!
//! ```text
//! cargo run --release -p sherman-bench --bin fig14_internal [-- --quick]
//! ```

use sherman::TreeOptions;
use sherman_bench::{print_table, run_tree_experiment, Args, ExperimentResult, TreeExperiment};
use sherman_workload::{KeyDistribution, Mix};

fn run(args: &Args, name: &str, options: TreeOptions) -> ExperimentResult {
    let mut exp = TreeExperiment::default_scaled(name, options);
    exp.mix = Mix::WRITE_INTENSIVE;
    exp.distribution = KeyDistribution::ScrambledZipfian { theta: 0.99 };
    exp.threads = args.get_usize("threads", exp.threads);
    exp.key_space = args.get_u64("keys", exp.key_space);
    exp.ops_per_thread = args.get_usize("ops", exp.ops_per_thread);
    if args.quick() {
        exp = exp.quick();
    }
    run_tree_experiment(&exp)
}

fn main() {
    let args = Args::from_env();
    let fg = run(&args, "FG+", TreeOptions::fg_plus());
    let sherman = run(&args, "Sherman", TreeOptions::sherman());

    println!("Figure 14(a): retry counts of read operations (fraction of reads)");
    let mut rows = Vec::new();
    for retries in 0..=4u64 {
        rows.push(vec![
            retries.to_string(),
            format!("{:.4}%", fg.read_retries.fraction(retries) * 100.0),
            format!("{:.4}%", sherman.read_retries.fraction(retries) * 100.0),
        ]);
    }
    print_table(&["retries", "FG+", "Sherman"], &rows);

    println!("\nFigure 14(b): round trips of write operations (CDF)");
    let mut rows = Vec::new();
    for rts in 1..=6u64 {
        rows.push(vec![
            rts.to_string(),
            format!("{:.1}%", fg.write_round_trips.cdf(rts) * 100.0),
            format!("{:.1}%", sherman.write_round_trips.cdf(rts) * 100.0),
        ]);
    }
    rows.push(vec![
        "p99".to_string(),
        fg.write_round_trips.quantile(0.99).to_string(),
        sherman.write_round_trips.quantile(0.99).to_string(),
    ]);
    print_table(&["round trips", "FG+ (<=)", "Sherman (<=)"], &rows);

    println!("\nFigure 14(c): write size of write operations");
    let rows = vec![
        vec![
            "mean bytes".to_string(),
            format!("{:.0}", fg.write_sizes.mean()),
            format!("{:.0}", sherman.write_sizes.mean()),
        ],
        vec![
            "<= 64 B".to_string(),
            format!("{:.1}%", fg.write_sizes.fraction_at_most(64) * 100.0),
            format!("{:.1}%", sherman.write_sizes.fraction_at_most(64) * 100.0),
        ],
        vec![
            ">= 1 KiB".to_string(),
            format!("{:.1}%", fg.write_sizes.fraction_at_least(1024) * 100.0),
            format!("{:.1}%", sherman.write_sizes.fraction_at_least(1024) * 100.0),
        ],
    ];
    print_table(&["metric", "FG+", "Sherman"], &rows);
}
