//! Churn — structural deletes under a sliding key window (beyond the paper).
//!
//! Drives a windowed insert/delete workload until the live key set has turned
//! over `--turnover` times (default 10×), comparing Sherman with structural
//! deletes enabled against the paper's grow-only behaviour.  Reports
//! throughput, merge/reclaim counters and space amplification (node addresses
//! carved per live node).
//!
//! ```text
//! cargo run --release -p sherman_bench --bin churn [-- --quick]
//!     [--window N] [--turnover X] [--threads N] [--lookup-pct P] [--range-pct P]
//! ```

use sherman::TreeOptions;
use sherman_bench::{fmt_mops, print_table, run_churn_experiment, Args, ChurnExperiment};

fn main() {
    let args = Args::from_env();
    let systems = [
        ("merges-on", TreeOptions::sherman()),
        ("merges-off", TreeOptions::sherman().without_structural_deletes()),
    ];

    println!("Churn: sliding-window insert/delete, structural deletes vs grow-only");
    let mut rows = Vec::new();
    for (name, options) in systems {
        let mut exp = ChurnExperiment::default_scaled(name, options);
        exp.window = args.get_u64("window", exp.window);
        exp.turnover = args.get_f64("turnover", exp.turnover);
        exp.threads = args.get_usize("threads", exp.threads);
        exp.lookup_pct = args.get_u64("lookup-pct", exp.lookup_pct as u64) as u8;
        exp.range_pct = args.get_u64("range-pct", exp.range_pct as u64) as u8;
        if args.quick() {
            exp = exp.quick();
        }
        let r = run_churn_experiment(&exp);
        rows.push(vec![
            r.name.clone(),
            fmt_mops(r.summary.throughput_ops),
            format!("{:.1}", r.turnovers),
            r.space.merges().to_string(),
            r.space.rebalances.to_string(),
            r.space.root_collapses.to_string(),
            r.reclaim.retired.to_string(),
            r.reclaim.reused.to_string(),
            r.census.total().to_string(),
            r.nodes_carved.to_string(),
            format!("{:.2}", r.space_amplification),
        ]);
    }
    print_table(
        &[
            "system",
            "Mops",
            "turnovers",
            "merges",
            "rebalances",
            "root-collapses",
            "retired",
            "reused",
            "live nodes",
            "carved nodes",
            "space amp",
        ],
        &rows,
    );
    println!("\nspace amp = node addresses carved from chunks / nodes reachable at the end");
    println!("(grow-only trees keep their garbage reachable: the leak shows in the live/");
    println!(" carved node counts, which scale with turnover instead of the window size)");
}
