//! Churn — structural deletes under a sliding key window (beyond the paper).
//!
//! Drives a windowed insert/delete workload until the live key set has turned
//! over `--turnover` times (default 10×), comparing Sherman with structural
//! deletes under **epoch-based reclamation** (the default), the same tree
//! under the deprecated grace-period fallback, and the paper's grow-only
//! behaviour.  Reports throughput, merge/reclaim counters, space
//! amplification (node addresses carved per live node), and **reclaim
//! latency** — the virtual-time distance from a node's retirement to its
//! reuse.  Under epochs that distance tracks the workload (near-zero when no
//! reader is pinned); under the fallback it is floored by `reclaim_grace_ns`.
//!
//! ```text
//! cargo run --release -p sherman_bench --bin churn [-- --quick]
//!     [--window N] [--turnover X] [--threads N] [--lookup-pct P] [--range-pct P]
//! ```

use sherman::{ReclaimScheme, TreeOptions};
use sherman_bench::{fmt_mops, print_table, run_churn_experiment, Args, ChurnExperiment};

fn main() {
    let args = Args::from_env();
    let systems = [
        ("merges-on/epochs", TreeOptions::sherman(), ReclaimScheme::Epoch),
        ("merges-on/grace", TreeOptions::sherman(), ReclaimScheme::GracePeriod),
        (
            "merges-off",
            TreeOptions::sherman().without_structural_deletes(),
            ReclaimScheme::Epoch,
        ),
    ];

    println!("Churn: sliding-window insert/delete; reclamation schemes vs grow-only");
    let mut rows = Vec::new();
    for (name, options, scheme) in systems {
        let mut exp = ChurnExperiment::default_scaled(name, options);
        if scheme == ReclaimScheme::GracePeriod {
            let grace = exp.tree.reclaim_grace_ns;
            exp.tree = exp.tree.with_grace_reclamation(grace);
        }
        exp.window = args.get_u64("window", exp.window);
        exp.turnover = args.get_f64("turnover", exp.turnover);
        exp.threads = args.get_usize("threads", exp.threads);
        exp.lookup_pct = args.get_u64("lookup-pct", exp.lookup_pct as u64) as u8;
        exp.range_pct = args.get_u64("range-pct", exp.range_pct as u64) as u8;
        if args.quick() {
            exp = exp.quick();
        }
        let r = run_churn_experiment(&exp);
        rows.push(vec![
            r.name.clone(),
            fmt_mops(r.summary.throughput_ops),
            format!("{:.1}", r.turnovers),
            r.space.merges().to_string(),
            r.reclaim.retired.to_string(),
            r.reclaim.reused.to_string(),
            format!("{:.0}", r.reclaim.mean_reclaim_latency_ns()),
            if r.reclaim.reused == 0 {
                "-".into()
            } else {
                r.reclaim.reclaim_latency_min_ns.to_string()
            },
            r.census.total().to_string(),
            r.nodes_carved.to_string(),
            format!("{:.2}", r.space_amplification),
        ]);
    }
    print_table(
        &[
            "system",
            "Mops",
            "turnovers",
            "merges",
            "retired",
            "reused",
            "reclaim-lat mean(ns)",
            "reclaim-lat min(ns)",
            "live nodes",
            "carved nodes",
            "space amp",
        ],
        &rows,
    );
    println!("\nspace amp = node addresses carved from chunks / nodes reachable at the end");
    println!("reclaim latency = virtual time from a node's retirement to its reuse:");
    println!(" epochs recycle as soon as the last pre-retirement reader finishes, so the");
    println!(" mean follows the workload; the grace fallback is floored by reclaim_grace_ns");
    println!("(grow-only trees keep their garbage reachable: the leak shows in the live/");
    println!(" carved node counts, which scale with turnover instead of the window size)");
}
