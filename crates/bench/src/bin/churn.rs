//! Churn — structural deletes under a sliding key window (beyond the paper).
//!
//! Drives a windowed insert/delete workload until the live key set has turned
//! over `--turnover` times (default 10×), comparing Sherman with structural
//! deletes under **epoch-based reclamation** (the default), the same tree
//! under the deprecated grace-period fallback, and the paper's grow-only
//! behaviour.  Reports throughput, merge/reclaim counters — including the
//! merge **direction** split (left merges fold a rightmost child into its
//! left sibling) — space amplification (node addresses carved per live
//! node), the two **reclaim latency** figures (retire→eligible isolates the
//! scheme; retire→reuse additionally includes the wait for allocation
//! demand), and the type-❷ cache hit ratio with the self-healing refresh
//! count.
//!
//! ```text
//! cargo run --release -p sherman_bench --bin churn [-- --quick] [--smoke]
//!     [--window N] [--turnover X] [--threads N] [--lookup-pct P] [--range-pct P]
//!     [--backend sim|threaded]
//! ```
//!
//! `--smoke` runs only the merges-on/epochs system at `--quick` scale and
//! exits non-zero when a structural regression is detected: space
//! amplification above 2×, zero left merges (the rightmost-child shape leak),
//! a persistently underfull child that a same-parent partner could fix, or a
//! cache-coherence regression — merges that posted zero invalidations (the
//! typestate publish path bypassed), messages still pending after every
//! server quiesced, or stale cache hits served after the drain.

use sherman::{ReclaimScheme, TreeOptions};
use sherman_bench::{
    fmt_mops, print_table, run_churn_experiment, run_churn_experiment_on, Args, ChurnExperiment,
    ChurnResult,
};
use sherman_sim::ThreadedFabric;

/// Dispatch on `--backend sim|threaded` (default: the virtual-time simulator).
fn run(args: &Args, exp: &ChurnExperiment) -> ChurnResult {
    match args.get("backend").unwrap_or("sim") {
        "sim" => run_churn_experiment(exp),
        "threaded" => run_churn_experiment_on::<ThreadedFabric>(exp),
        other => {
            eprintln!("unknown --backend {other} (expected sim|threaded)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = Args::from_env();
    if args.flag("smoke") {
        smoke(&args);
        return;
    }
    let systems = [
        ("merges-on/epochs", TreeOptions::sherman(), ReclaimScheme::Epoch),
        ("merges-on/grace", TreeOptions::sherman(), ReclaimScheme::GracePeriod),
        (
            "merges-off",
            TreeOptions::sherman().without_structural_deletes(),
            ReclaimScheme::Epoch,
        ),
    ];

    println!("Churn: sliding-window insert/delete; reclamation schemes vs grow-only");
    let mut rows = Vec::new();
    let mut timelines = Vec::new();
    for (name, options, scheme) in systems {
        let exp = configure(&args, name, options, scheme);
        let r = run(&args, &exp);
        timelines.push((r.name.clone(), r.shape_timeline.clone()));
        rows.push(vec![
            r.name.clone(),
            fmt_mops(r.summary.throughput_ops),
            format!("{:.1}", r.turnovers),
            r.space.merges().to_string(),
            r.space.left_merges.to_string(),
            (r.space.rebalances + r.space.internal_rebalances).to_string(),
            r.reclaim.retired.to_string(),
            r.reclaim.reused.to_string(),
            format!("{:.0}", r.reclaim.mean_eligible_latency_ns()),
            format!("{:.0}", r.reclaim.mean_reclaim_latency_ns()),
            r.census.total().to_string(),
            r.nodes_carved.to_string(),
            format!("{:.2}", r.space_amplification),
            format!("{:.0}%", r.top_hit_ratio * 100.0),
            r.cache_refreshes.to_string(),
            r.coherence.invalidations_posted.to_string(),
            format!("{:.0}", r.coherence.mean_apply_lag_ns()),
            r.stale_hits_after_drain.to_string(),
        ]);
    }
    print_table(
        &[
            "system",
            "Mops",
            "turnovers",
            "merges",
            "left-mrg",
            "rebal",
            "retired",
            "reused",
            "elig-lat mean(ns)",
            "reuse-lat mean(ns)",
            "live nodes",
            "carved nodes",
            "space amp",
            "top-hit",
            "refreshes",
            "inval",
            "coh-lag mean(ns)",
            "stale-after-drain",
        ],
        &rows,
    );
    println!("\nshape health while running (incremental per-level samples, rotating windows):");
    for (name, timeline) in &timelines {
        let samples = timeline.len();
        let parents: u64 = timeline.iter().map(|a| a.parents).sum();
        let worst_rightmost = timeline
            .iter()
            .map(|a| a.underfull_rightmost_fixable)
            .max()
            .unwrap_or(0);
        let worst_internal = timeline
            .iter()
            .map(|a| a.underfull_internals_fixable)
            .max()
            .unwrap_or(0);
        println!(
            "  {name}: {samples} samples / {parents} parents audited mid-run, \
             worst fixable rightmost={worst_rightmost} internals={worst_internal} (advisory)"
        );
    }
    println!("\nspace amp = node addresses carved from chunks / nodes reachable at the end");
    println!("inval     = coherence invalidations posted to other compute servers; coh-lag");
    println!("            is the mean post->apply delay of the fabric-delivered messages");
    println!("stale-after-drain = stale cache hits served by a full re-read AFTER every");
    println!("            server quiesced its coherence inbox (must be zero)");
    println!("left-mrg  = merges that folded a rightmost child into its left sibling");
    println!("elig-lat  = retirement -> policy clears the address (isolates the scheme)");
    println!("reuse-lat = retirement -> an allocator takes it (includes demand waits)");
    println!("top-hit   = type-2 top-level cache hit ratio; refreshes = entries healed");
    println!("            in place after structural changes / on cache-miss traversals");
    println!("(grow-only trees keep their garbage reachable: the leak shows in the live/");
    println!(" carved node counts, which scale with turnover instead of the window size)");
}

fn configure(
    args: &Args,
    name: &str,
    options: TreeOptions,
    scheme: ReclaimScheme,
) -> ChurnExperiment {
    let mut exp = ChurnExperiment::default_scaled(name, options);
    if scheme == ReclaimScheme::GracePeriod {
        let grace = exp.tree.reclaim_grace_ns;
        exp.tree = exp.tree.with_grace_reclamation(grace);
    }
    exp.window = args.get_u64("window", exp.window);
    exp.turnover = args.get_f64("turnover", exp.turnover);
    exp.threads = args.get_usize("threads", exp.threads);
    exp.lookup_pct = args.get_u64("lookup-pct", exp.lookup_pct as u64) as u8;
    exp.range_pct = args.get_u64("range-pct", exp.range_pct as u64) as u8;
    if args.quick() || args.flag("smoke") {
        exp = exp.quick();
    }
    exp
}

/// CI gate: one quick merges-on run; non-zero exit on structural regression.
fn smoke(args: &Args) {
    let exp = configure(args, "smoke/epochs", TreeOptions::sherman(), ReclaimScheme::Epoch);
    let r = run(args, &exp);
    println!(
        "churn smoke: turnovers={:.1} space_amp={:.2} merges={} left_merges={} \
         rebalances={}+{} underfull_rightmost_fixable={} underfull_internals_fixable={} \
         top_hit={:.0}% refreshes={} inval_posted={} coh_applied={} \
         coh_lag_mean_ns={:.0} stale_after_drain={}",
        r.turnovers,
        r.space_amplification,
        r.space.merges(),
        r.space.left_merges,
        r.space.rebalances,
        r.space.internal_rebalances,
        r.audit.underfull_rightmost_fixable,
        r.audit.underfull_internals_fixable,
        r.top_hit_ratio * 100.0,
        r.cache_refreshes,
        r.coherence.invalidations_posted,
        r.coherence.applied,
        r.coherence.mean_apply_lag_ns(),
        r.stale_hits_after_drain,
    );
    let mut failures = Vec::new();
    if r.turnovers < exp.turnover {
        failures.push(format!(
            "turnover {:.1} below the {:.1} target",
            r.turnovers, exp.turnover
        ));
    }
    // Space amplification is timing-coupled: it gates how promptly merges and
    // reclamation keep up with the churn, which the OS scheduler perturbs on
    // the threaded backend.  Enforce it only where timing is modeled; on the
    // threaded backend it is advisory and only the structural/coherence
    // invariants below stay strict.
    if args.get("backend").unwrap_or("sim") == "sim" && r.space_amplification > 2.0 {
        failures.push(format!("space amplification {:.2} exceeds 2x", r.space_amplification));
    }
    if r.space.left_merges == 0 {
        failures.push("zero left merges: the rightmost-child shape leak is back".into());
    }
    if r.audit.underfull_rightmost_fixable > 0 {
        failures.push(format!(
            "{} rightmost children stayed underfull with a viable left sibling",
            r.audit.underfull_rightmost_fixable
        ));
    }
    if r.audit.underfull_internals_fixable > 0 {
        failures.push(format!(
            "{} internal nodes stayed underfull with a viable rebalance partner",
            r.audit.underfull_internals_fixable
        ));
    }
    if r.space.merges() > 0 && r.coherence.invalidations_posted == 0 {
        failures.push(
            "merges retired nodes but posted zero coherence invalidations: \
             the typestate publish path is being bypassed"
                .into(),
        );
    }
    if r.coherence.pending() > 0 {
        failures.push(format!(
            "{} coherence messages still pending after every server quiesced",
            r.coherence.pending()
        ));
    }
    if r.stale_hits_after_drain > 0 {
        failures.push(format!(
            "{} stale cache hits served after all coherence inboxes drained",
            r.stale_hits_after_drain
        ));
    }
    if failures.is_empty() {
        println!("churn smoke: OK");
    } else {
        for f in &failures {
            eprintln!("churn smoke FAILED: {f}");
        }
        std::process::exit(1);
    }
}
