//! Figure 11 — contribution of each technique under *uniform* workloads.
//!
//! ```text
//! cargo run --release -p sherman-bench --bin fig11_ablation_uniform [-- --quick]
//! ```

use sherman::TreeOptions;
use sherman_bench::{fmt_mops, fmt_us, print_table, run_tree_experiment, Args, TreeExperiment};
use sherman_workload::{KeyDistribution, Mix};

fn main() {
    let args = Args::from_env();
    let mixes = [
        ("write-only", Mix::WRITE_ONLY),
        ("write-intensive", Mix::WRITE_INTENSIVE),
        ("read-intensive", Mix::READ_INTENSIVE),
    ];
    println!("Figure 11: ablation under uniform workloads");
    for (mix_name, mix) in mixes {
        println!("\n[{mix_name}]");
        let mut rows = Vec::new();
        for (label, options) in TreeOptions::ablation_ladder() {
            let mut exp = TreeExperiment::default_scaled(label, options);
            exp.mix = mix;
            exp.distribution = KeyDistribution::Uniform;
            exp.threads = args.get_usize("threads", exp.threads);
            exp.key_space = args.get_u64("keys", exp.key_space);
            exp.ops_per_thread = args.get_usize("ops", exp.ops_per_thread);
            if args.quick() {
                exp = exp.quick();
            }
            let r = run_tree_experiment(&exp);
            rows.push(vec![
                label.to_string(),
                fmt_mops(r.summary.throughput_ops),
                fmt_us(r.summary.p50_ns),
                fmt_us(r.summary.p99_ns),
            ]);
        }
        print_table(
            &["configuration", "throughput (Mops)", "p50 (us)", "p99 (us)"],
            &rows,
        );
    }
}
