//! Scenario — hostile workloads under adaptive memory pressure.
//!
//! Runs the six-scenario hostile suite (shifting zipfian hot spot, flash
//! crowd, sequential right-edge appends, long scans racing churn, pool
//! near-exhaustion, mid-run cache re-budgeting) through **both** drive
//! paths: one blocking operation at a time, and the split-phase pipelined
//! scheduler.  Reports throughput, tail latency, overlap depth, allocator
//! backpressure, pressure evictions and the cache hit ratio before/after the
//! mid-run budget change.
//!
//! ```text
//! cargo run --release -p sherman_bench --bin scenario [-- --quick] [--smoke]
//!     [--threads N] [--ops N] [--depth D] [--key-space N] [--backend sim|threaded]
//! ```
//!
//! `--smoke` runs the whole suite at `--quick` scale on both drive paths and
//! exits non-zero when a hostile run breaks an invariant: any op error, a
//! fixable shape-audit defect, a census/outstanding mismatch outside pool
//! exhaustion, a pool-exhaustion run that never saw backpressure, or a cache
//! shrink whose hit ratio fell off a cliff (more than 50 points absolute).

use sherman_bench::{
    fmt_mops, fmt_us, hostile_suite, print_table, run_scenario_experiment,
    run_scenario_experiment_on, Args, MemoryPressure, ScenarioExperiment, ScenarioResult,
};
use sherman_sim::ThreadedFabric;

/// Dispatch on `--backend sim|threaded` (default: the virtual-time simulator).
fn run(args: &Args, exp: &ScenarioExperiment) -> ScenarioResult {
    match args.get("backend").unwrap_or("sim") {
        "sim" => run_scenario_experiment(exp),
        "threaded" => run_scenario_experiment_on::<ThreadedFabric>(exp),
        other => {
            eprintln!("unknown --backend {other} (expected sim|threaded)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = Args::from_env();
    if args.flag("smoke") {
        smoke(&args);
        return;
    }

    println!("Scenario: hostile workloads under adaptive memory pressure");
    let mut rows = Vec::new();
    for depth in [0usize, args.get_usize("depth", 4)] {
        for exp in hostile_suite(depth) {
            let exp = configure(&args, exp);
            let r = run(&args, &exp);
            rows.push(row(&r));
        }
    }
    print_table(
        &[
            "scenario",
            "pressure",
            "drive",
            "Mops",
            "p50",
            "p99",
            "in-flight",
            "backpr ops",
            "exhaust",
            "press-evict",
            "hit pre",
            "hit post",
            "space amp",
            "errs",
        ],
        &rows,
    );
    println!("\nbackpr ops  = operations refused with the typed allocation error");
    println!("exhaust     = allocator exhaustion events (every server + free list dry)");
    println!("press-evict = cache entries evicted by the mid-run budget shrink");
    println!("hit pre/post= type-1 cache hit ratio before / after the midpoint");
    println!("(the pool-exhaustion rows run a deliberately tiny pool; the cache/4 rows");
    println!(" cut every compute server's index-cache budget 4x at the midpoint)");
}

fn row(r: &ScenarioResult) -> Vec<String> {
    vec![
        r.name.clone(),
        r.pressure.to_string(),
        r.drive.to_string(),
        fmt_mops(r.summary.throughput_ops),
        fmt_us(r.summary.p50_ns),
        fmt_us(r.summary.p99_ns),
        format!("{:.1}", r.overlap.mean_in_flight()),
        r.backpressure_ops.to_string(),
        r.backpressure.exhaustion_events.to_string(),
        r.pressure_evictions.to_string(),
        format!("{:.0}%", r.hit_before * 100.0),
        format!("{:.0}%", r.hit_after * 100.0),
        format!("{:.2}", r.space_amplification),
        r.op_errors.len().to_string(),
    ]
}

fn configure(args: &Args, mut exp: ScenarioExperiment) -> ScenarioExperiment {
    exp.threads = args.get_usize("threads", exp.threads);
    exp.ops_per_thread = args.get_usize("ops", exp.ops_per_thread);
    exp.key_space = args.get_u64("key-space", exp.key_space);
    if args.quick() || args.flag("smoke") {
        exp = exp.quick();
    }
    exp
}

/// One scenario's smoke verdict: push a line per violated invariant.
fn gate(r: &ScenarioResult, failures: &mut Vec<String>) {
    let tag = format!("{} [{}]", r.name, r.drive);
    if !r.op_errors.is_empty() {
        failures.push(format!("{tag}: {} op errors: {:?}", r.op_errors.len(), r.op_errors));
    }
    // Tiny-node bulkloads legitimately leave a few underfull rightmost
    // tails; the gate is that hostile traffic adds none on top.
    if r.audit.underfull_rightmost_fixable > r.audit_baseline.underfull_rightmost_fixable
        || r.audit.underfull_internals_fixable > r.audit_baseline.underfull_internals_fixable
    {
        failures.push(format!(
            "{tag}: the run added fixable shape defects (rightmost {} -> {}, internals {} -> {})",
            r.audit_baseline.underfull_rightmost_fixable,
            r.audit.underfull_rightmost_fixable,
            r.audit_baseline.underfull_internals_fixable,
            r.audit.underfull_internals_fixable
        ));
    }
    match r.pressure {
        MemoryPressure::PoolExhaustion => {
            if r.backpressure_ops == 0 || !r.backpressure.saw_pressure() {
                failures.push(format!(
                    "{tag}: the tiny pool never backpressured (carved {} nodes)",
                    r.nodes_carved
                ));
            }
        }
        _ => {
            // Outside exhaustion every carved-but-released node must be
            // accounted for: what the census reaches equals what the
            // allocator says is outstanding.
            if r.census.total() != r.nodes_outstanding {
                failures.push(format!(
                    "{tag}: census {} != outstanding {}",
                    r.census.total(),
                    r.nodes_outstanding
                ));
            }
        }
    }
    if let MemoryPressure::CacheShrink { .. } = r.pressure {
        if r.pressure_evictions == 0 {
            failures.push(format!("{tag}: the budget shrink evicted nothing"));
        }
        if r.hit_before - r.hit_after > 0.5 {
            failures.push(format!(
                "{tag}: hit ratio fell off a cliff: {:.2} -> {:.2}",
                r.hit_before, r.hit_after
            ));
        }
    }
}

/// CI gate: the whole suite at quick scale on both drive paths; non-zero
/// exit on any invariant violation.
fn smoke(args: &Args) {
    let mut failures = Vec::new();
    for depth in [0usize, 4] {
        for exp in hostile_suite(depth) {
            let exp = configure(args, exp);
            let r = run(args, &exp);
            println!(
                "scenario smoke: {:<18} [{:>9}] ops={} backpr={} exhaust={} \
                 press_evict={} hit={:.0}%->{:.0}% errs={}",
                r.name,
                r.drive.to_string(),
                r.summary.ops,
                r.backpressure_ops,
                r.backpressure.exhaustion_events,
                r.pressure_evictions,
                r.hit_before * 100.0,
                r.hit_after * 100.0,
                r.op_errors.len(),
            );
            gate(&r, &mut failures);
        }
    }
    if failures.is_empty() {
        println!("scenario smoke: OK");
    } else {
        for f in &failures {
            eprintln!("scenario smoke FAILED: {f}");
        }
        std::process::exit(1);
    }
}
