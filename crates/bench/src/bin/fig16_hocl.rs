//! Figure 16 — HOCL microbenchmark: the lock-design ladder under a skewed
//! (0.99) access pattern over a fixed set of locks on one memory server.
//!
//! ```text
//! cargo run --release -p sherman-bench --bin fig16_hocl [-- --quick --threads N --locks N]
//! ```

use sherman_bench::{fmt_mops, fmt_us, print_table, run_lock_experiment, Args, LockExperiment, LockVariant};

fn main() {
    let args = Args::from_env();
    println!("Figure 16: performance of HOCL design steps (skewed pattern, theta=0.99)");
    let mut rows = Vec::new();
    for (label, variant) in LockVariant::ladder() {
        let mut exp = LockExperiment::default_scaled(variant);
        exp.theta = args.get_f64("theta", 0.99);
        exp.threads = args.get_usize("threads", exp.threads);
        exp.locks = args.get_u64("locks", exp.locks);
        exp.ops_per_thread = args.get_usize("ops", exp.ops_per_thread);
        if args.quick() {
            exp.threads = exp.threads.min(6);
            exp.ops_per_thread = exp.ops_per_thread.min(100);
        }
        let s = run_lock_experiment(&exp);
        rows.push(vec![
            label.to_string(),
            fmt_mops(s.throughput_ops),
            fmt_us(s.p50_ns),
            fmt_us(s.p99_ns),
        ]);
    }
    print_table(
        &["configuration", "throughput (Mops)", "p50 (us)", "p99 (us)"],
        &rows,
    );
}
