//! Figure 3 — `RDMA_WRITE` throughput versus IO size: small writes sustain the
//! NIC's IOPS ceiling, large writes hit the wire-bandwidth ceiling.
//!
//! ```text
//! cargo run --release -p sherman-bench --bin fig3_write_size [-- --quick --threads N]
//! ```

use sherman_bench::{fmt_mops, fmt_us, print_table, run_write_size_sweep, Args};

fn main() {
    let args = Args::from_env();
    let sizes = [16usize, 32, 64, 128, 256, 512, 1024, 2048, 4096];
    let threads = args.get_usize("threads", 8);
    let ops = if args.quick() { 150 } else { args.get_usize("ops", 500) };

    println!("Figure 3: RDMA_WRITE throughput vs IO size");
    let points = run_write_size_sweep(&sizes, threads, 4, ops);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.io_bytes.to_string(),
                fmt_mops(p.summary.throughput_ops),
                fmt_us(p.summary.p50_ns),
            ]
        })
        .collect();
    print_table(&["IO size (B)", "throughput (Mops)", "p50 (us)"], &rows);
}
