//! Figure 12 — range query performance: range-only and range-write workloads,
//! range sizes 100 and 1000, FG+ versus Sherman.
//!
//! ```text
//! cargo run --release -p sherman-bench --bin fig12_range [-- --quick]
//! ```

use sherman::TreeOptions;
use sherman_bench::{fmt_mops, print_table, run_tree_experiment, Args, TreeExperiment};
use sherman_workload::{KeyDistribution, Mix};

fn main() {
    let args = Args::from_env();
    let systems = [("FG+", TreeOptions::fg_plus()), ("Sherman", TreeOptions::sherman())];
    let workloads = [("range-only", Mix::RANGE_ONLY), ("range-write", Mix::RANGE_WRITE)];
    let range_sizes = [100u64, 1000];

    println!("Figure 12: range query performance (skewed ranges)");
    for (wl_name, mix) in workloads {
        println!("\n[{wl_name}]");
        let mut rows = Vec::new();
        for range_size in range_sizes {
            let mut row = vec![range_size.to_string()];
            for (sys_name, options) in systems {
                let mut exp =
                    TreeExperiment::default_scaled(format!("{sys_name}/{range_size}"), options);
                exp.mix = mix;
                exp.range_size = range_size;
                exp.distribution = KeyDistribution::ScrambledZipfian { theta: 0.99 };
                exp.threads = args.get_usize("threads", exp.threads);
                exp.key_space = args.get_u64("keys", exp.key_space);
                exp.ops_per_thread = args.get_usize("ops", if range_size >= 1000 { 100 } else { 200 });
                if args.quick() {
                    exp = exp.quick();
                    exp.ops_per_thread = exp.ops_per_thread.min(40);
                }
                let r = run_tree_experiment(&exp);
                row.push(fmt_mops(r.summary.throughput_ops));
            }
            rows.push(row);
        }
        print_table(&["range size", "FG+ (Mops)", "Sherman (Mops)"], &rows);
    }
}
