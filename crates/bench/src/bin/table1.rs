//! Table 1 — performance of the one-sided approach (FG-style index) under
//! read-intensive / write-intensive mixes with uniform / skewed popularity.
//!
//! The paper's headline observation: the one-sided baseline collapses under
//! the write-intensive + skewed combination (0.34 Mops, ~20 ms p99).
//!
//! ```text
//! cargo run --release -p sherman-bench --bin table1 [-- --quick --threads N --keys N]
//! ```

use sherman::TreeOptions;
use sherman_bench::{fmt_mops, fmt_us, print_table, run_tree_experiment, Args, TreeExperiment};
use sherman_workload::{KeyDistribution, Mix};

fn main() {
    let args = Args::from_env();
    let cells = [
        ("read-intensive", "uniform", Mix::READ_INTENSIVE, KeyDistribution::Uniform),
        (
            "read-intensive",
            "skew",
            Mix::READ_INTENSIVE,
            KeyDistribution::ScrambledZipfian { theta: 0.99 },
        ),
        ("write-intensive", "uniform", Mix::WRITE_INTENSIVE, KeyDistribution::Uniform),
        (
            "write-intensive",
            "skew",
            Mix::WRITE_INTENSIVE,
            KeyDistribution::ScrambledZipfian { theta: 0.99 },
        ),
    ];

    println!("Table 1: index performance in the one-sided approach (FG+)");
    let mut rows = Vec::new();
    for (mix_name, dist_name, mix, distribution) in cells {
        let mut exp = TreeExperiment::default_scaled(
            format!("{mix_name}/{dist_name}"),
            TreeOptions::fg_plus(),
        );
        exp.mix = mix;
        exp.distribution = distribution;
        exp.threads = args.get_usize("threads", exp.threads);
        exp.key_space = args.get_u64("keys", exp.key_space);
        exp.ops_per_thread = args.get_usize("ops", exp.ops_per_thread);
        if args.quick() {
            exp = exp.quick();
        }
        let r = run_tree_experiment(&exp);
        rows.push(vec![
            r.name.clone(),
            fmt_mops(r.summary.throughput_ops),
            fmt_us(r.summary.p50_ns),
            fmt_us(r.summary.p90_ns),
            fmt_us(r.summary.p99_ns),
        ]);
    }
    print_table(
        &["workload", "throughput (Mops)", "p50 (us)", "p90 (us)", "p99 (us)"],
        &rows,
    );
}
