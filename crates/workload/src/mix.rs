//! The paper's operation mixes (Table 3).

use serde::{Deserialize, Serialize};

/// Kind of index operation issued by the workload driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Point lookup of an existing or non-existing key.
    Lookup,
    /// Insert a new key or update an existing one (the paper folds updates
    /// into "insert"; about 2/3 of inserts update existing keys).
    Insert,
    /// Delete a key.
    Delete,
    /// Range query starting at a key, scanning a fixed number of entries.
    RangeQuery,
}

/// A read/write mix expressed as percentages that sum to 100.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mix {
    /// Percentage of insert/update operations.
    pub insert_pct: u8,
    /// Percentage of lookup operations.
    pub lookup_pct: u8,
    /// Percentage of delete operations.
    pub delete_pct: u8,
    /// Percentage of range queries.
    pub range_pct: u8,
}

impl Mix {
    /// `write-only`: 100 % insert (Table 3).
    pub const WRITE_ONLY: Mix = Mix {
        insert_pct: 100,
        lookup_pct: 0,
        delete_pct: 0,
        range_pct: 0,
    };
    /// `write-intensive`: 50 % insert, 50 % lookup (Table 3).
    pub const WRITE_INTENSIVE: Mix = Mix {
        insert_pct: 50,
        lookup_pct: 50,
        delete_pct: 0,
        range_pct: 0,
    };
    /// `read-intensive`: 5 % insert, 95 % lookup (Table 3).
    pub const READ_INTENSIVE: Mix = Mix {
        insert_pct: 5,
        lookup_pct: 95,
        delete_pct: 0,
        range_pct: 0,
    };
    /// `range-only`: 100 % range query (Table 3).
    pub const RANGE_ONLY: Mix = Mix {
        insert_pct: 0,
        lookup_pct: 0,
        delete_pct: 0,
        range_pct: 100,
    };
    /// `range-write`: 50 % insert, 50 % range query (Table 3).
    pub const RANGE_WRITE: Mix = Mix {
        insert_pct: 50,
        lookup_pct: 0,
        delete_pct: 0,
        range_pct: 50,
    };

    /// All five named mixes together with their paper names.
    pub fn named_mixes() -> [(&'static str, Mix); 5] {
        [
            ("write-only", Mix::WRITE_ONLY),
            ("write-intensive", Mix::WRITE_INTENSIVE),
            ("read-intensive", Mix::READ_INTENSIVE),
            ("range-only", Mix::RANGE_ONLY),
            ("range-write", Mix::RANGE_WRITE),
        ]
    }

    /// Whether the percentages sum to 100.
    pub fn is_valid(&self) -> bool {
        self.insert_pct as u16
            + self.lookup_pct as u16
            + self.delete_pct as u16
            + self.range_pct as u16
            == 100
    }

    /// Map a uniform draw in `0..100` to an operation kind.
    pub fn pick(&self, roll: u8) -> OpKind {
        debug_assert!(roll < 100);
        let mut edge = self.insert_pct;
        if roll < edge {
            return OpKind::Insert;
        }
        edge += self.lookup_pct;
        if roll < edge {
            return OpKind::Lookup;
        }
        edge += self.delete_pct;
        if roll < edge {
            return OpKind::Delete;
        }
        OpKind::RangeQuery
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_mixes_are_valid_and_match_table3() {
        for (name, mix) in Mix::named_mixes() {
            assert!(mix.is_valid(), "{name} does not sum to 100");
        }
        assert_eq!(Mix::WRITE_INTENSIVE.insert_pct, 50);
        assert_eq!(Mix::READ_INTENSIVE.lookup_pct, 95);
        assert_eq!(Mix::RANGE_ONLY.range_pct, 100);
    }

    #[test]
    fn op_ratios_sum_to_one() {
        // Every named mix and a custom 4-way mix: the four ratios form a full
        // probability distribution (percentages sum to exactly 100).
        let custom = Mix {
            insert_pct: 25,
            lookup_pct: 40,
            delete_pct: 15,
            range_pct: 20,
        };
        for (name, mix) in Mix::named_mixes()
            .into_iter()
            .chain([("custom", custom)])
        {
            let sum = mix.insert_pct as u16
                + mix.lookup_pct as u16
                + mix.delete_pct as u16
                + mix.range_pct as u16;
            assert_eq!(sum, 100, "{name} ratios sum to {sum}");
            assert!(mix.is_valid());
        }
        // And a mix that does not sum to 100 is rejected.
        let broken = Mix {
            insert_pct: 50,
            lookup_pct: 30,
            delete_pct: 10,
            range_pct: 20,
        };
        assert!(!broken.is_valid());
    }

    #[test]
    fn pick_samples_each_kind_in_proportion() {
        // Exhaustively sweeping the 100 possible rolls must reproduce the mix
        // percentages exactly — `pick` partitions 0..100 into the four bands.
        let mix = Mix {
            insert_pct: 25,
            lookup_pct: 40,
            delete_pct: 15,
            range_pct: 20,
        };
        let mut counts = std::collections::HashMap::new();
        for roll in 0..100u8 {
            *counts.entry(mix.pick(roll)).or_insert(0u32) += 1;
        }
        assert_eq!(counts[&OpKind::Insert], 25);
        assert_eq!(counts[&OpKind::Lookup], 40);
        assert_eq!(counts[&OpKind::Delete], 15);
        assert_eq!(counts[&OpKind::RangeQuery], 20);

        // Kinds with a zero share never appear.
        let mut counts = std::collections::HashMap::new();
        for roll in 0..100u8 {
            *counts.entry(Mix::WRITE_INTENSIVE.pick(roll)).or_insert(0u32) += 1;
        }
        assert_eq!(counts.get(&OpKind::Delete), None);
        assert_eq!(counts.get(&OpKind::RangeQuery), None);
        assert_eq!(counts[&OpKind::Insert], 50);
        assert_eq!(counts[&OpKind::Lookup], 50);
    }

    #[test]
    fn pick_respects_boundaries() {
        let m = Mix::WRITE_INTENSIVE;
        assert_eq!(m.pick(0), OpKind::Insert);
        assert_eq!(m.pick(49), OpKind::Insert);
        assert_eq!(m.pick(50), OpKind::Lookup);
        assert_eq!(m.pick(99), OpKind::Lookup);

        let r = Mix::RANGE_WRITE;
        assert_eq!(r.pick(10), OpKind::Insert);
        assert_eq!(r.pick(75), OpKind::RangeQuery);

        let custom = Mix {
            insert_pct: 10,
            lookup_pct: 60,
            delete_pct: 20,
            range_pct: 10,
        };
        assert!(custom.is_valid());
        assert_eq!(custom.pick(5), OpKind::Insert);
        assert_eq!(custom.pick(30), OpKind::Lookup);
        assert_eq!(custom.pick(75), OpKind::Delete);
        assert_eq!(custom.pick(95), OpKind::RangeQuery);
    }
}
