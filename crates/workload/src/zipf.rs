//! Bounded Zipfian generator (Gray et al., as used by YCSB).
//!
//! The generator draws items from `0..n` such that item popularity follows a
//! Zipfian distribution with parameter `theta` (the paper's "skewness"; 0.99
//! is the common real-world setting, 0 degenerates to uniform).  The scrambled
//! variant hashes the rank so that popular items are spread over the key space
//! instead of being clustered at its start — matching YCSB's
//! `ScrambledZipfianGenerator`, which the paper's workloads rely on.

use rand::Rng;

/// Bounded Zipfian distribution over `0..n`.
#[derive(Debug, Clone)]
pub struct ZipfianGenerator {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl ZipfianGenerator {
    /// Create a generator over `0..items` with skew `theta` (`0 <= theta < 1`;
    /// `theta = 0` degenerates to uniform).
    ///
    /// # Panics
    /// Panics if `items == 0` or `theta` is not in `[0, 1)`.
    pub fn new(items: u64, theta: f64) -> Self {
        assert!(items > 0, "zipfian over an empty domain");
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0, 1), got {theta}"
        );
        let zetan = Self::zeta(items, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        ZipfianGenerator {
            items,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation; domains used in experiments are at most a few
        // million, and construction happens once per run.
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Number of items in the domain.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw the next rank in `0..items` (rank 0 is the most popular item).
    pub fn next_rank<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.theta == 0.0 {
            return rng.gen_range(0..self.items);
        }
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.items - 1)
    }

    /// Draw the next item with popularity decoupled from item order
    /// (YCSB's scrambled Zipfian).
    pub fn next_scrambled<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let rank = self.next_rank(rng);
        fnv1a_64(rank) % self.items
    }

    /// Expose the zeta(2, theta) constant (used by tests to validate the
    /// constructor against reference values).
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

/// FNV-1a hash of a 64-bit value; also used by the index layer to hash node
/// addresses into lock-table slots.
pub fn fnv1a_64(value: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut hash = OFFSET;
    for byte in value.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn theta_zero_is_uniform() {
        let gen = ZipfianGenerator::new(1_000, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(gen.next_rank(&mut rng)).or_insert(0u64) += 1;
        }
        let max = *counts.values().max().unwrap();
        let min = *counts.values().min().unwrap_or(&0);
        // Uniform: no item should be wildly more popular than another.
        assert!(max < 5 * min.max(1), "max {max}, min {min}");
    }

    #[test]
    fn high_theta_concentrates_mass_on_few_items() {
        let gen = ZipfianGenerator::new(100_000, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = HashMap::new();
        let draws = 200_000;
        for _ in 0..draws {
            *counts.entry(gen.next_rank(&mut rng)).or_insert(0u64) += 1;
        }
        // Rank 0 alone should receive a large share of accesses (YCSB zipf 0.99
        // over 1e5 items gives the hottest item several percent of traffic).
        let hottest = counts.get(&0).copied().unwrap_or(0) as f64 / draws as f64;
        assert!(hottest > 0.04, "hottest item share {hottest}");
        // The top-10 ranks dominate the tail.
        let top10: u64 = (0..10).map(|r| counts.get(&r).copied().unwrap_or(0)).sum();
        assert!(top10 as f64 / draws as f64 > 0.2);
    }

    #[test]
    fn theta_099_top1_frequency_matches_analytic_value() {
        // For a bounded zipfian over n items, P(rank 0) = 1 / zeta_n(theta).
        // At the paper's theta = 0.99 the hottest key's empirical share must
        // land within 10% of that analytic value.
        let n = 100_000u64;
        let theta = 0.99;
        let gen = ZipfianGenerator::new(n, theta);
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let expected = 1.0 / zetan;

        let mut rng = StdRng::seed_from_u64(0x05EE_D299);
        let draws = 400_000u64;
        let mut top1 = 0u64;
        for _ in 0..draws {
            if gen.next_rank(&mut rng) == 0 {
                top1 += 1;
            }
        }
        let observed = top1 as f64 / draws as f64;
        let rel_err = (observed - expected).abs() / expected;
        assert!(
            rel_err < 0.10,
            "top-1 frequency {observed:.4} vs analytic {expected:.4} (rel err {rel_err:.3})"
        );
        // Sanity: at theta = 0.99 over 1e5 items the hottest key takes a
        // several-percent share, as the paper's skewed workloads assume.
        assert!(observed > 0.05 && observed < 0.15);
    }

    #[test]
    fn ranks_are_in_domain() {
        for theta in [0.0, 0.5, 0.9, 0.99] {
            let gen = ZipfianGenerator::new(64, theta);
            let mut rng = StdRng::seed_from_u64(3);
            for _ in 0..10_000 {
                assert!(gen.next_rank(&mut rng) < 64);
                assert!(gen.next_scrambled(&mut rng) < 64);
            }
        }
    }

    #[test]
    fn scrambling_spreads_hot_items() {
        let gen = ZipfianGenerator::new(1_000_000, 0.99);
        let mut rng = StdRng::seed_from_u64(11);
        let mut below_half = 0u64;
        let draws = 50_000;
        for _ in 0..draws {
            if gen.next_scrambled(&mut rng) < 500_000 {
                below_half += 1;
            }
        }
        let frac = below_half as f64 / draws as f64;
        // Plain zipfian would put almost everything below the midpoint;
        // scrambled spreads it roughly evenly.
        assert!((0.3..=0.7).contains(&frac), "fraction below midpoint {frac}");
    }

    #[test]
    fn fnv_is_deterministic_and_spreads_bits() {
        assert_eq!(fnv1a_64(42), fnv1a_64(42));
        assert_ne!(fnv1a_64(1), fnv1a_64(2));
        // Low bits should differ for consecutive inputs (used for bucket hashing).
        let collisions = (0..1024u64)
            .filter(|&i| fnv1a_64(i) % 1024 == fnv1a_64(i + 1) % 1024)
            .count();
        assert!(collisions < 32);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zero_items_panics() {
        let _ = ZipfianGenerator::new(0, 0.5);
    }
}
