//! Hostile workload scenarios: adversarial access shapes the YCSB mixes
//! (Table 3) cannot express.
//!
//! The paper's evaluation drives Sherman with *stationary* distributions —
//! a fixed Zipfian skew over a fixed key space.  Real deployments misbehave
//! in ways a stationary driver never probes:
//!
//! * [`ScenarioShape::ShiftingHotspot`] — the Zipfian hot spot *migrates*
//!   across the key space over the run, invalidating whatever the index
//!   cache and the on-chip lock table learned about the previous phase,
//! * [`ScenarioShape::FlashCrowd`] — a large share of every thread's
//!   operations converge on one single key (the "celebrity row"), turning
//!   one leaf and one global lock into the whole cluster's bottleneck,
//! * [`ScenarioShape::SequentialAppend`] — every insert lands at the right
//!   edge of the key space, the classic B-link pathology where one rightmost
//!   leaf chain absorbs every split,
//! * [`ScenarioShape::ScanChurn`] — long range scans race a sliding-window
//!   insert/delete churn, so scans keep crossing leaves that are being
//!   split, merged and reclaimed underneath them.
//!
//! Each scenario is a deterministic per-thread stream ([`ScenarioGenerator`])
//! in the same mould as [`WorkloadGenerator`](crate::WorkloadGenerator): the
//! stream depends only on `(seed, thread_id)`, and the hot spot's *motion
//! schedule* ([`ScenarioSpec::hot_key_at`]) is a pure function of the seed —
//! independent of the thread count — so runs with different parallelism
//! attack the same keys in the same order.

use crate::churn::{ChurnGenerator, ChurnSpec};
use crate::mix::{Mix, OpKind};
use crate::spec::Op;
use crate::zipf::{fnv1a_64, ZipfianGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The hostile access shape a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScenarioShape {
    /// Zipfian skew whose hot spot migrates across the key space: the run is
    /// divided into `phases` equal slices, and each phase centres the skew on
    /// a fresh [`ScenarioSpec::hot_key_at`] anchor.
    ShiftingHotspot {
        /// Zipfian skewness in `[0, 1)` (0.99 in the paper's skewed runs).
        theta: f64,
        /// Number of hot-spot positions visited over the run.
        phases: u64,
    },
    /// A single key absorbs `hot_pct` percent of every thread's operations;
    /// the rest are uniform over the key space.
    FlashCrowd {
        /// Percentage (`0..=100`) of operations aimed at the one hot key.
        hot_pct: u8,
    },
    /// Every insert appends at the right edge of the key space (monotonically
    /// increasing keys, partitioned over threads so streams stay disjoint).
    /// Deletes trim the oldest appended key; reads target live appended keys.
    SequentialAppend,
    /// Long scans racing a sliding-window churn: the stream delegates to a
    /// [`ChurnGenerator`] whose range share is raised to `scan_pct` and whose
    /// scans request `scan_size` entries each.
    ScanChurn {
        /// Percentage of operations that are long range scans.
        scan_pct: u8,
        /// Entries requested per scan.
        scan_size: u64,
    },
}

impl ScenarioShape {
    /// Short stable name used in benchmark tables and smoke-gate output.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioShape::ShiftingHotspot { .. } => "shifting-hotspot",
            ScenarioShape::FlashCrowd { .. } => "flash-crowd",
            ScenarioShape::SequentialAppend => "sequential-append",
            ScenarioShape::ScanChurn { .. } => "scan-churn",
        }
    }
}

/// A fully-specified hostile scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// The access shape under test.
    pub shape: ScenarioShape,
    /// Number of keys in the bulkloadable key space (`0..key_space`).
    /// [`ScenarioShape::SequentialAppend`] appends *above* this bound.
    pub key_space: u64,
    /// Number of keys bulkloaded before the measured phase.
    pub bulkload_keys: u64,
    /// Number of client threads the scenario is partitioned over.
    pub threads: u64,
    /// Operations each thread issues (also the denominator of the
    /// shifting-hotspot phase schedule).
    pub ops_per_thread: u64,
    /// Operation mix.  [`ScenarioShape::ScanChurn`] uses only the lookup
    /// share (its writes come from the churn window, its scans from
    /// `scan_pct`).
    pub mix: Mix,
    /// Entries requested per range query (shapes other than scan-churn).
    pub range_size: u64,
    /// Base RNG seed; each thread derives its own deterministic stream.
    pub seed: u64,
}

impl ScenarioSpec {
    /// A laptop-friendly base: 64 k keys, 80 % bulkloaded, four threads.
    pub fn default_scaled(shape: ScenarioShape) -> Self {
        ScenarioSpec {
            shape,
            key_space: 1 << 16,
            bulkload_keys: (1 << 16) / 5 * 4,
            threads: 4,
            ops_per_thread: 10_000,
            mix: Mix::WRITE_INTENSIVE,
            range_size: 50,
            seed: 0x5C_E7A5,
        }
    }

    /// Validate the specification.
    pub fn validate(&self) -> Result<(), String> {
        if self.key_space == 0 {
            return Err("key_space must be > 0".into());
        }
        if self.bulkload_keys > self.key_space {
            return Err("bulkload_keys cannot exceed key_space".into());
        }
        if self.threads == 0 {
            return Err("threads must be > 0".into());
        }
        if self.ops_per_thread == 0 {
            return Err("ops_per_thread must be > 0".into());
        }
        if !self.mix.is_valid() {
            return Err("operation mix does not sum to 100".into());
        }
        match self.shape {
            ScenarioShape::ShiftingHotspot { theta, phases } => {
                if !(0.0..1.0).contains(&theta) {
                    return Err("zipfian theta must be in [0, 1)".into());
                }
                if phases == 0 {
                    return Err("shifting hotspot needs at least one phase".into());
                }
            }
            ScenarioShape::FlashCrowd { hot_pct } => {
                if hot_pct > 100 {
                    return Err("hot_pct cannot exceed 100".into());
                }
            }
            ScenarioShape::SequentialAppend => {}
            ScenarioShape::ScanChurn { .. } => {
                self.churn_spec().validate()?;
            }
        }
        Ok(())
    }

    /// The keys bulkloaded before the measured phase, spread evenly over the
    /// key space (same policy as [`WorkloadSpec`](crate::WorkloadSpec)).
    pub fn bulkload_iter(&self) -> impl Iterator<Item = u64> + '_ {
        let stride = (self.key_space as f64 / self.bulkload_keys.max(1) as f64).max(1.0);
        (0..self.bulkload_keys).map(move |i| ((i as f64 * stride) as u64).min(self.key_space - 1))
    }

    /// The hot-spot anchor key for `phase`.
    ///
    /// This is a *pure* function of `(seed, phase)` — deliberately independent
    /// of the thread count — so every thread of every run configuration agrees
    /// on where the hot spot sits at each point of the schedule.
    pub fn hot_key_at(&self, phase: u64) -> u64 {
        fnv1a_64(self.seed ^ phase.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % self.key_space
    }

    /// The churn sub-spec a [`ScenarioShape::ScanChurn`] stream delegates to.
    fn churn_spec(&self) -> ChurnSpec {
        let (scan_pct, scan_size) = match self.shape {
            ScenarioShape::ScanChurn {
                scan_pct,
                scan_size,
            } => (scan_pct, scan_size),
            _ => (0, self.range_size),
        };
        ChurnSpec {
            window: self.key_space,
            threads: self.threads,
            lookup_pct: self.mix.lookup_pct,
            range_pct: scan_pct,
            range_size: scan_size,
            bidirectional: true,
            seed: self.seed,
        }
    }

    /// Create the deterministic operation stream for one client thread.
    pub fn generator(&self, thread_id: u64) -> ScenarioGenerator {
        ScenarioGenerator::new(self.clone(), thread_id % self.threads.max(1))
    }
}

/// Deterministic per-thread hostile-scenario stream.
#[derive(Debug)]
pub struct ScenarioGenerator {
    spec: ScenarioSpec,
    thread_id: u64,
    rng: StdRng,
    zipf: Option<ZipfianGenerator>,
    churn: Option<ChurnGenerator>,
    /// Operations produced so far (drives the hotspot phase schedule).
    counter: u64,
    /// Sequential-append bookkeeping: next append index…
    appended: u64,
    /// …and the oldest still-live append index (everything below is deleted).
    trimmed: u64,
}

impl ScenarioGenerator {
    fn new(spec: ScenarioSpec, thread_id: u64) -> Self {
        let zipf = match spec.shape {
            ScenarioShape::ShiftingHotspot { theta, .. } => {
                Some(ZipfianGenerator::new(spec.key_space, theta))
            }
            _ => None,
        };
        let churn = match spec.shape {
            ScenarioShape::ScanChurn { .. } => Some(spec.churn_spec().generator(thread_id)),
            _ => None,
        };
        let rng =
            StdRng::seed_from_u64(spec.seed ^ thread_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        ScenarioGenerator {
            spec,
            thread_id,
            rng,
            zipf,
            churn,
            counter: 0,
            appended: 0,
            trimmed: 0,
        }
    }

    /// The thread id this stream was derived for.
    pub fn thread_id(&self) -> u64 {
        self.thread_id
    }

    /// The scenario this stream was derived from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The hotspot phase operation `counter` falls into.
    fn phase_of(&self, counter: u64) -> u64 {
        let ScenarioShape::ShiftingHotspot { phases, .. } = self.spec.shape else {
            return 0;
        };
        let phase_len = (self.spec.ops_per_thread / phases).max(1);
        (counter / phase_len).min(phases - 1)
    }

    /// The key appended at index `i` by this thread: right of the bulkload
    /// space, partitioned over threads so streams never collide.
    pub fn append_key_at(&self, i: u64) -> u64 {
        self.spec.key_space + i * self.spec.threads + self.thread_id
    }

    /// The value written for append index `i` (verifiable by readers).
    pub fn append_value_at(&self, i: u64) -> u64 {
        i.wrapping_mul(31).wrapping_add(self.thread_id)
    }

    /// Appended keys still live (not yet trimmed by deletes).
    pub fn live_appended(&self) -> u64 {
        self.appended - self.trimmed
    }

    /// Draw the target key for the current shape (never called for
    /// scan-churn, which delegates wholesale).
    fn next_key(&mut self) -> u64 {
        match self.spec.shape {
            ScenarioShape::ShiftingHotspot { .. } => {
                let hot = self.spec.hot_key_at(self.phase_of(self.counter));
                let offset = self
                    .zipf
                    .as_mut()
                    .expect("hotspot scenarios carry a zipfian")
                    .next_rank(&mut self.rng);
                // Rank 0 is the hot spot itself; higher ranks fan out to the
                // right, wrapping at the key-space edge.
                (hot + offset) % self.spec.key_space
            }
            ScenarioShape::FlashCrowd { hot_pct } => {
                if self.rng.gen_range(0..100u8) < hot_pct {
                    self.spec.hot_key_at(0)
                } else {
                    self.rng.gen_range(0..self.spec.key_space)
                }
            }
            ScenarioShape::SequentialAppend | ScenarioShape::ScanChurn { .. } => {
                unreachable!("shape draws its own keys")
            }
        }
    }

    /// Produce the next operation.
    pub fn next_op(&mut self) -> Op {
        if let Some(churn) = self.churn.as_mut() {
            self.counter += 1;
            return churn.next_op();
        }
        let roll = self.rng.gen_range(0..100u8);
        let kind = self.spec.mix.pick(roll);
        let c = self.counter;
        self.counter += 1;
        if matches!(self.spec.shape, ScenarioShape::SequentialAppend) {
            return self.next_append_op(kind);
        }
        let key = self.next_key();
        match kind {
            OpKind::Lookup => Op::Lookup { key },
            OpKind::Delete => Op::Delete { key },
            OpKind::RangeQuery => Op::Range {
                start_key: key,
                count: self.spec.range_size,
            },
            OpKind::Insert => Op::Insert {
                key,
                value: self.thread_id.wrapping_mul(1_000_003).wrapping_add(c + 1),
            },
        }
    }

    /// Sequential-append dispatch: inserts append at the right edge, deletes
    /// trim the oldest appended key, reads target live appended keys (falling
    /// back to the bulkloaded space while nothing has been appended yet).  A
    /// delete drawn before any append is converted into an append so the
    /// stream never touches bulkloaded keys with writes.
    fn next_append_op(&mut self, kind: OpKind) -> Op {
        match kind {
            OpKind::Delete if self.trimmed < self.appended => {
                let i = self.trimmed;
                self.trimmed += 1;
                Op::Delete {
                    key: self.append_key_at(i),
                }
            }
            OpKind::Insert | OpKind::Delete => {
                let i = self.appended;
                self.appended += 1;
                Op::Insert {
                    key: self.append_key_at(i),
                    value: self.append_value_at(i),
                }
            }
            OpKind::Lookup | OpKind::RangeQuery => {
                let key = if self.trimmed < self.appended {
                    let i = self.rng.gen_range(self.trimmed..self.appended);
                    self.append_key_at(i)
                } else {
                    self.rng.gen_range(0..self.spec.key_space)
                };
                if kind == OpKind::Lookup {
                    Op::Lookup { key }
                } else {
                    Op::Range {
                        start_key: key,
                        count: self.spec.range_size,
                    }
                }
            }
        }
    }

    /// Produce `n` operations.
    pub fn take_ops(&mut self, n: usize) -> Vec<Op> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn spec(shape: ScenarioShape) -> ScenarioSpec {
        ScenarioSpec::default_scaled(shape)
    }

    #[test]
    fn default_specs_are_valid() {
        for shape in [
            ScenarioShape::ShiftingHotspot {
                theta: 0.99,
                phases: 8,
            },
            ScenarioShape::FlashCrowd { hot_pct: 60 },
            ScenarioShape::SequentialAppend,
            ScenarioShape::ScanChurn {
                scan_pct: 10,
                scan_size: 200,
            },
        ] {
            spec(shape).validate().unwrap_or_else(|e| panic!("{}: {e}", shape.name()));
        }
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut s = spec(ScenarioShape::ShiftingHotspot {
            theta: 1.2,
            phases: 4,
        });
        assert!(s.validate().is_err(), "theta out of range");
        s.shape = ScenarioShape::ShiftingHotspot {
            theta: 0.9,
            phases: 0,
        };
        assert!(s.validate().is_err(), "zero phases");

        let s = spec(ScenarioShape::FlashCrowd { hot_pct: 101 });
        assert!(s.validate().is_err(), "hot_pct > 100");

        let mut s = spec(ScenarioShape::SequentialAppend);
        s.key_space = 0;
        assert!(s.validate().is_err(), "empty key space");

        let mut s = spec(ScenarioShape::ScanChurn {
            scan_pct: 60,
            scan_size: 10,
        });
        s.mix.lookup_pct = 50;
        assert!(s.validate().is_err(), "churn needs room for writes");
    }

    #[test]
    fn streams_are_deterministic_per_thread_and_differ_across_threads() {
        for shape in [
            ScenarioShape::ShiftingHotspot {
                theta: 0.99,
                phases: 8,
            },
            ScenarioShape::FlashCrowd { hot_pct: 60 },
            ScenarioShape::SequentialAppend,
            ScenarioShape::ScanChurn {
                scan_pct: 10,
                scan_size: 100,
            },
        ] {
            let s = spec(shape);
            let a = s.generator(1).take_ops(300);
            let b = s.generator(1).take_ops(300);
            let c = s.generator(2).take_ops(300);
            assert_eq!(a, b, "{} replay must match", shape.name());
            assert_ne!(a, c, "{} threads must differ", shape.name());
        }
    }

    #[test]
    fn hot_key_schedule_is_independent_of_thread_count() {
        let mut one = spec(ScenarioShape::ShiftingHotspot {
            theta: 0.99,
            phases: 16,
        });
        let mut many = one.clone();
        one.threads = 1;
        many.threads = 64;
        for phase in 0..16 {
            assert_eq!(one.hot_key_at(phase), many.hot_key_at(phase));
            assert!(one.hot_key_at(phase) < one.key_space);
        }
        // The schedule actually moves: 16 phases hit more than one anchor.
        let anchors: BTreeSet<u64> = (0..16).map(|p| one.hot_key_at(p)).collect();
        assert!(anchors.len() > 8, "only {} distinct anchors", anchors.len());
    }

    #[test]
    fn shifting_hotspot_tracks_the_phase_anchor() {
        let s = ScenarioSpec {
            ops_per_thread: 4_000,
            mix: Mix {
                insert_pct: 0,
                lookup_pct: 100,
                delete_pct: 0,
                range_pct: 0,
            },
            ..spec(ScenarioShape::ShiftingHotspot {
                theta: 0.99,
                phases: 4,
            })
        };
        let mut gen = s.generator(0);
        let phase_len = s.ops_per_thread / 4;
        for phase in 0..4u64 {
            let hot = s.hot_key_at(phase);
            let hits = (0..phase_len)
                .filter(|_| matches!(gen.next_op(), Op::Lookup { key } if key == hot))
                .count();
            // Rank 0 of a theta-0.99 Zipfian is drawn far more often than
            // 1/key_space; seeing it repeatedly pins the skew to this anchor.
            assert!(
                hits > phase_len as usize / 20,
                "phase {phase}: only {hits} hits on anchor {hot}"
            );
        }
    }

    #[test]
    fn flash_crowd_concentrates_on_one_key() {
        let s = spec(ScenarioShape::FlashCrowd { hot_pct: 60 });
        let hot = s.hot_key_at(0);
        let mut gen = s.generator(3);
        let n = 20_000usize;
        let on_hot = gen
            .take_ops(n)
            .into_iter()
            .filter(|op| {
                matches!(
                    *op,
                    Op::Lookup { key } | Op::Insert { key, .. } | Op::Delete { key }
                        | Op::Range { start_key: key, .. }
                    if key == hot
                )
            })
            .count();
        let frac = on_hot as f64 / n as f64;
        assert!(
            (0.57..=0.63).contains(&frac),
            "hot-key share {frac} (expected ≈0.60)"
        );
    }

    #[test]
    fn hostile_mix_proportions_are_respected() {
        // Satellite: the hotspot and flash-crowd generators must preserve the
        // configured mix proportions exactly as the YCSB driver does.
        for shape in [
            ScenarioShape::ShiftingHotspot {
                theta: 0.9,
                phases: 8,
            },
            ScenarioShape::FlashCrowd { hot_pct: 40 },
        ] {
            let s = ScenarioSpec {
                ops_per_thread: 20_000,
                mix: Mix {
                    insert_pct: 25,
                    lookup_pct: 40,
                    delete_pct: 15,
                    range_pct: 20,
                },
                ..spec(shape)
            };
            let mut gen = s.generator(9);
            let n = 20_000usize;
            let mut counts = [0usize; 4];
            for op in gen.take_ops(n) {
                match op {
                    Op::Insert { .. } => counts[0] += 1,
                    Op::Lookup { .. } => counts[1] += 1,
                    Op::Delete { .. } => counts[2] += 1,
                    Op::Range { .. } => counts[3] += 1,
                }
            }
            for (observed, pct) in counts.into_iter().zip([25u32, 40, 15, 20]) {
                let expected = n * pct as usize / 100;
                let tolerance = n / 50; // 2% absolute slack on 20k samples
                assert!(
                    observed.abs_diff(expected) <= tolerance,
                    "{}: kind share {observed} vs expected {expected} (pct {pct})",
                    shape.name()
                );
            }
        }
    }

    #[test]
    fn sequential_append_stays_at_the_right_edge() {
        let s = ScenarioSpec {
            mix: Mix {
                insert_pct: 60,
                lookup_pct: 20,
                delete_pct: 15,
                range_pct: 5,
            },
            ..spec(ScenarioShape::SequentialAppend)
        };
        let mut gen = s.generator(2);
        let mut live: BTreeSet<u64> = BTreeSet::new();
        let mut last_insert = 0u64;
        for op in gen.take_ops(5_000) {
            match op {
                Op::Insert { key, value } => {
                    assert!(key >= s.key_space, "appends must land beyond the bulkload space");
                    assert!(key > last_insert || last_insert == 0, "appends must be monotonic");
                    assert_eq!(key % s.threads, 2, "thread 2 owns keys ≡ 2 mod threads");
                    let i = (key - s.key_space) / s.threads;
                    assert_eq!(value, gen.append_value_at(i), "values must be verifiable");
                    last_insert = key;
                    assert!(live.insert(key));
                }
                Op::Delete { key } => {
                    assert_eq!(live.iter().next(), Some(&key), "deletes trim the oldest append");
                    live.remove(&key);
                }
                Op::Lookup { key } | Op::Range { start_key: key, .. } => {
                    assert!(
                        live.contains(&key) || key < s.key_space,
                        "reads target live appended or bulkloaded keys, got {key}"
                    );
                }
            }
        }
        assert!(gen.live_appended() > 0);
        assert_eq!(gen.live_appended(), live.len() as u64);
    }

    #[test]
    fn scan_churn_delegates_to_a_partitioned_churn_window() {
        let s = ScenarioSpec {
            key_space: 4_000,
            bulkload_keys: 0,
            mix: Mix {
                insert_pct: 70,
                lookup_pct: 20,
                delete_pct: 0,
                range_pct: 10,
            },
            ..spec(ScenarioShape::ScanChurn {
                scan_pct: 10,
                scan_size: 200,
            })
        };
        let mut scans = 0usize;
        let mut gen = s.generator(1);
        for op in gen.take_ops(6_000) {
            match op {
                Op::Insert { key, .. } | Op::Delete { key } | Op::Lookup { key } => {
                    assert_eq!(key % s.threads, 1, "churn keys are partitioned by thread");
                }
                Op::Range { start_key, count } => {
                    assert_eq!(count, 200, "scan size must come from the shape");
                    assert_eq!(start_key % s.threads, 1);
                    scans += 1;
                }
            }
        }
        assert!(scans > 0, "scan share must materialize");
    }
}
