//! Sliding-window churn workloads: insert waves at the head of a key window,
//! delete waves at its tail.
//!
//! The paper's YCSB mixes (Table 3) never shrink the tree, so they cannot
//! exercise structural deletes or memory reclamation.  A churn workload keeps
//! a fixed number of keys live while continuously *turning the window over*:
//! every write wave inserts fresh keys just above the window and deletes the
//! oldest keys at its bottom.  Long runs therefore cycle many times the live
//! key count through the tree — exactly the "production-scale, long-running"
//! scenario where a grow-only index leaks remote memory without bound.
//!
//! Each thread owns the keys congruent to its id modulo the thread count, so
//! threads never insert/delete the same key while still sharing leaves (and
//! therefore merge boundaries) with their neighbours.
//!
//! With [`ChurnSpec::bidirectional`] (the default) each full upward turnover
//! is followed by a short **descending drain**: write waves briefly delete at
//! the window's *head* (re-filling at the tail) before resuming the upward
//! slide.  A purely ascending window only ever drains nodes that have a right
//! B-link sibling; the descending excursions drain the tree's high edge —
//! rightmost children whose only same-parent partner is their *left* sibling
//! — which is exactly the shape a direction-complete merge engine must keep
//! balanced.  The net motion stays upward, so grow-only comparisons still
//! leak proportionally to turnover.

use crate::spec::Op;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A fully-specified sliding-window churn workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Number of live keys across all threads once the window is full.
    pub window: u64,
    /// Number of client threads the window is partitioned over.
    pub threads: u64,
    /// Percentage of operations that look up a random live key.
    pub lookup_pct: u8,
    /// Percentage of operations that range-scan from a random live key
    /// (crossing merge boundaries).  The remainder are insert/delete waves.
    pub range_pct: u8,
    /// Entries requested per range scan.
    pub range_size: u64,
    /// Whether each full upward turnover is followed by a short descending
    /// drain at the window's head (a quarter window), exercising left-sibling
    /// merges of rightmost children.  `false` restores the purely ascending
    /// PR 2 window.
    pub bidirectional: bool,
    /// Base RNG seed; each thread derives a deterministic stream.
    pub seed: u64,
}

impl ChurnSpec {
    /// A laptop-friendly default: a 20 k-key window over 4 threads with a
    /// 75 / 20 / 5 write / lookup / scan split.
    pub fn default_scaled() -> Self {
        ChurnSpec {
            window: 20_000,
            threads: 4,
            lookup_pct: 20,
            range_pct: 5,
            range_size: 50,
            bidirectional: true,
            seed: 0xC0FFEE,
        }
    }

    /// Validate the specification.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("window must be > 0".into());
        }
        if self.threads == 0 {
            return Err("threads must be > 0".into());
        }
        if self.window / self.threads == 0 {
            return Err("window must hold at least one key per thread".into());
        }
        if self.lookup_pct as u16 + self.range_pct as u16 >= 100 {
            return Err("lookup_pct + range_pct must leave room for writes".into());
        }
        Ok(())
    }

    /// Live keys owned by one thread once the window is full.
    pub fn window_per_thread(&self) -> u64 {
        (self.window / self.threads).max(1)
    }

    /// Fraction of operations that are writes (inserts + deletes).
    pub fn write_fraction(&self) -> f64 {
        (100 - self.lookup_pct - self.range_pct) as f64 / 100.0
    }

    /// Operations each thread must issue so that the key window turns over at
    /// least `turnover` times (each turnover cycles a full window of keys
    /// through insert *and* delete, i.e. two writes per key), on top of the
    /// initial window fill.  The estimate is conservative: because every
    /// delete is followed by a forced re-fill insert, the realized write
    /// share is at least [`ChurnSpec::write_fraction`], so the actual
    /// turnover meets or exceeds the target.
    pub fn ops_per_thread_for_turnover(&self, turnover: f64) -> usize {
        let per_thread = self.window_per_thread() as f64;
        let writes = 2.0 * turnover.max(0.0) * per_thread;
        let fill = per_thread;
        (fill + (writes / self.write_fraction()).ceil()) as usize
    }

    /// Create the deterministic operation stream for one thread.
    pub fn generator(&self, thread_id: u64) -> ChurnGenerator {
        ChurnGenerator::new(self.clone(), thread_id % self.threads)
    }
}

/// Deterministic per-thread churn stream.
///
/// Thread `t` owns the keys `{ i * threads + t }`; `tail..head` indexes the
/// live window.  Values encode the insertion index so that readers can verify
/// them.
#[derive(Debug)]
pub struct ChurnGenerator {
    spec: ChurnSpec,
    thread_id: u64,
    /// Next key index to insert at the window's high end (the window itself
    /// is always `tail..head`).
    head: u64,
    /// Oldest live key index (everything below is deleted).
    tail: u64,
    /// Whether write waves currently delete at the head (descending drain)
    /// instead of the tail (upward slide).
    descending: bool,
    /// Write waves left before the direction flips (ignored when
    /// [`ChurnSpec::bidirectional`] is off).
    phase_left: u64,
    /// Total deletes issued (the turnover numerator: every windowful of
    /// deletes is one turnover, whichever end they drained).
    deletes: u64,
    rng: StdRng,
}

impl ChurnGenerator {
    fn new(spec: ChurnSpec, thread_id: u64) -> Self {
        let rng = StdRng::seed_from_u64(
            spec.seed ^ thread_id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let up_phase = spec.window_per_thread();
        ChurnGenerator {
            spec,
            thread_id,
            head: 0,
            tail: 0,
            descending: false,
            phase_left: up_phase,
            deletes: 0,
            rng,
        }
    }

    /// Length of a descending excursion: a quarter window (at least one).
    fn down_phase(&self) -> u64 {
        (self.spec.window_per_thread() / 4).max(1)
    }

    /// The thread id this stream was derived for.
    pub fn thread_id(&self) -> u64 {
        self.thread_id
    }

    /// The key for window index `i` of this thread.
    pub fn key_at(&self, i: u64) -> u64 {
        i * self.spec.threads + self.thread_id
    }

    /// The value written for window index `i` (verifiable by readers).
    pub fn value_at(&self, i: u64) -> u64 {
        i.wrapping_mul(31).wrapping_add(self.thread_id)
    }

    /// Number of live keys right now.
    pub fn live(&self) -> u64 {
        self.head - self.tail
    }

    /// How many times the window has fully turned over so far (one turnover
    /// per windowful of deletes, whichever end they drained).
    pub fn turnovers(&self) -> f64 {
        self.deletes as f64 / self.spec.window_per_thread() as f64
    }

    /// Produce the next operation.
    pub fn next_op(&mut self) -> Op {
        let per_thread = self.spec.window_per_thread();
        // Warm-up / re-fill: keep the window full before churning.  During a
        // descending drain the window re-fills downward at the tail, so the
        // net window slides down with the head; everywhere else it grows at
        // the head.
        if self.live() < per_thread {
            let i = if self.descending && self.tail > 0 {
                self.tail -= 1;
                self.tail
            } else {
                self.head += 1;
                self.head - 1
            };
            return Op::Insert {
                key: self.key_at(i),
                value: self.value_at(i),
            };
        }
        let roll = self.rng.gen_range(0..100u8);
        if roll < self.spec.lookup_pct {
            let i = self.rng.gen_range(self.tail..self.head);
            return Op::Lookup { key: self.key_at(i) };
        }
        if roll < self.spec.lookup_pct + self.spec.range_pct {
            let i = self.rng.gen_range(self.tail..self.head);
            return Op::Range {
                start_key: self.key_at(i),
                count: self.spec.range_size,
            };
        }
        // Write wave: the window is full here (the warm-up guard above
        // handles every not-full state), so delete at the draining end.  The
        // next call then takes the re-fill branch — each delete is
        // immediately followed by an insert, which also means the realized
        // write share is somewhat above what the lookup/range percentages
        // alone suggest ([`ChurnSpec::ops_per_thread_for_turnover`] treats
        // its estimate as a lower bound for the same reason).
        let i = if self.descending {
            self.head -= 1;
            self.head
        } else {
            self.tail += 1;
            self.tail - 1
        };
        self.deletes += 1;
        if self.spec.bidirectional {
            self.phase_left = self.phase_left.saturating_sub(1);
            // Flip at the phase boundary; a descending drain also ends early
            // when the window cannot slide further down.
            if self.phase_left == 0 || (self.descending && self.tail == 0) {
                self.descending = !self.descending && self.tail > 0;
                self.phase_left = if self.descending {
                    self.down_phase()
                } else {
                    per_thread
                };
            }
        }
        Op::Delete { key: self.key_at(i) }
    }

    /// Produce `n` operations.
    pub fn take_ops(&mut self, n: usize) -> Vec<Op> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn default_spec_is_valid() {
        ChurnSpec::default_scaled().validate().unwrap();
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut s = ChurnSpec::default_scaled();
        s.window = 0;
        assert!(s.validate().is_err());

        let mut s = ChurnSpec::default_scaled();
        s.threads = 0;
        assert!(s.validate().is_err());

        let mut s = ChurnSpec::default_scaled();
        s.threads = s.window + 1;
        assert!(s.validate().is_err());

        let mut s = ChurnSpec::default_scaled();
        s.lookup_pct = 60;
        s.range_pct = 40;
        assert!(s.validate().is_err(), "no room for writes");
    }

    #[test]
    fn window_stays_fixed_and_slides_upward() {
        let spec = ChurnSpec {
            window: 400,
            threads: 4,
            lookup_pct: 10,
            range_pct: 5,
            range_size: 10,
            bidirectional: false,
            seed: 7,
        };
        let mut gen = spec.generator(1);
        let mut live: BTreeSet<u64> = BTreeSet::new();
        for op in gen.take_ops(5_000) {
            match op {
                Op::Insert { key, .. } => {
                    assert_eq!(key % 4, 1, "thread 1 owns keys ≡ 1 mod 4");
                    assert!(live.insert(key), "insert of an already-live key {key}");
                }
                Op::Delete { key } => {
                    // Ascending-only mode: deletes target the oldest live key.
                    assert_eq!(live.iter().next(), Some(&key), "delete must hit the tail");
                    live.remove(&key);
                }
                Op::Lookup { key } | Op::Range { start_key: key, .. } => {
                    assert!(live.contains(&key), "read of a dead key {key}");
                }
            }
            assert!(live.len() as u64 <= spec.window_per_thread());
        }
        assert_eq!(live.len() as u64, spec.window_per_thread());
        assert!(gen.turnovers() > 10.0, "5000 ops over a 100-key window churn a lot");
    }

    #[test]
    fn bidirectional_churn_drains_both_ends_and_stays_consistent() {
        let spec = ChurnSpec {
            window: 400,
            threads: 4,
            lookup_pct: 10,
            range_pct: 5,
            range_size: 10,
            bidirectional: true,
            seed: 7,
        };
        let mut gen = spec.generator(1);
        let mut live: BTreeSet<u64> = BTreeSet::new();
        let (mut tail_deletes, mut head_deletes) = (0u64, 0u64);
        for op in gen.take_ops(8_000) {
            match op {
                Op::Insert { key, .. } => {
                    assert!(live.insert(key), "insert of an already-live key {key}");
                }
                Op::Delete { key } => {
                    // Every delete hits one *end* of the live window — the
                    // drain direction just flips between phases.
                    if live.iter().next() == Some(&key) {
                        tail_deletes += 1;
                    } else if live.iter().next_back() == Some(&key) {
                        head_deletes += 1;
                    } else {
                        panic!("delete of an interior key {key}");
                    }
                    live.remove(&key);
                }
                Op::Lookup { key } | Op::Range { start_key: key, .. } => {
                    assert!(live.contains(&key), "read of a dead key {key}");
                }
            }
            assert!(live.len() as u64 <= spec.window_per_thread());
        }
        assert_eq!(live.len() as u64, spec.window_per_thread());
        assert!(tail_deletes > 0, "the window must still slide upward");
        assert!(
            head_deletes > 0,
            "descending excursions must drain the high edge (left-merge shapes)"
        );
        // Up-phases dominate: the net motion stays upward so grow-only
        // comparisons still leak proportionally to turnover.
        assert!(tail_deletes > 2 * head_deletes);
        assert!(gen.turnovers() > 10.0);
    }

    #[test]
    fn streams_are_deterministic_and_partitioned() {
        let spec = ChurnSpec::default_scaled();
        let a: Vec<Op> = spec.generator(2).take_ops(200);
        let b: Vec<Op> = spec.generator(2).take_ops(200);
        assert_eq!(a, b);
        // Different threads touch disjoint keys.
        let keys = |ops: &[Op]| -> BTreeSet<u64> {
            ops.iter()
                .map(|op| match *op {
                    Op::Insert { key, .. }
                    | Op::Delete { key }
                    | Op::Lookup { key }
                    | Op::Range { start_key: key, .. } => key,
                })
                .collect()
        };
        let c: Vec<Op> = spec.generator(3).take_ops(200);
        assert!(keys(&a).is_disjoint(&keys(&c)));
    }

    #[test]
    fn ops_budget_reaches_requested_turnover() {
        let spec = ChurnSpec {
            window: 1_000,
            threads: 2,
            lookup_pct: 20,
            range_pct: 5,
            range_size: 10,
            bidirectional: true,
            seed: 9,
        };
        let ops = spec.ops_per_thread_for_turnover(10.0);
        let mut gen = spec.generator(0);
        for _ in 0..ops {
            gen.next_op();
        }
        // The budget is computed from expected write share; allow the RNG a
        // little slack but require the acceptance bar of ≥ 10 turnovers to be
        // within reach (the driver can always add a safety factor).
        assert!(
            gen.turnovers() >= 9.0,
            "expected ≈10 turnovers, got {:.2}",
            gen.turnovers()
        );
    }
}
