//! # sherman-workload — YCSB-style workload generation
//!
//! The Sherman evaluation drives the index with YCSB workloads (§5.1.3):
//! five read/write mixes (Table 3), uniform or Zipfian key popularity
//! (skewness 0.99 by default), an 8-byte key / 8-byte value record format and
//! a bulkloaded key space.  This crate reproduces that driver:
//!
//! * [`ZipfianGenerator`] — the Gray et al. bounded Zipfian generator YCSB
//!   uses, including the scrambled variant that decouples popularity from key
//!   order,
//! * [`KeyDistribution`] — uniform / Zipfian / scrambled-Zipfian selection,
//! * [`Mix`] and [`OpKind`] — the paper's five operation mixes,
//! * [`WorkloadSpec`] and [`WorkloadGenerator`] — per-thread deterministic
//!   operation streams,
//! * [`ChurnSpec`] and [`ChurnGenerator`] — sliding-window insert/delete
//!   churn, the delete-heavy family the paper's mixes cannot express (drives
//!   structural deletes and memory reclamation),
//! * [`ScenarioSpec`] and [`ScenarioGenerator`] — hostile scenarios the
//!   stationary YCSB driver cannot express: shifting hot spots, flash crowds,
//!   right-edge sequential appends and scans racing churn.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod churn;
pub mod mix;
pub mod scenario;
pub mod spec;
pub mod zipf;

pub use churn::{ChurnGenerator, ChurnSpec};
pub use mix::{Mix, OpKind};
pub use scenario::{ScenarioGenerator, ScenarioShape, ScenarioSpec};
pub use spec::{KeyDistribution, Op, WorkloadGenerator, WorkloadSpec};
pub use zipf::ZipfianGenerator;
