//! Workload specification and per-thread operation streams.

use crate::mix::{Mix, OpKind};
use crate::zipf::ZipfianGenerator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How keys are drawn from the key space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeyDistribution {
    /// Every key equally likely.
    Uniform,
    /// Zipfian popularity over key *ranks* (hot keys clustered at low keys).
    Zipfian {
        /// Skewness parameter (0.99 in the paper's skewed workloads).
        theta: f64,
    },
    /// Zipfian popularity with ranks scrambled over the key space (YCSB
    /// default; the paper's "skewed" workloads).
    ScrambledZipfian {
        /// Skewness parameter.
        theta: f64,
    },
}

/// A fully-specified workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of keys in the key space (keys are `0..key_space`).
    pub key_space: u64,
    /// Number of keys bulkloaded before the measured phase.
    pub bulkload_keys: u64,
    /// Operation mix.
    pub mix: Mix,
    /// Key popularity.
    pub distribution: KeyDistribution,
    /// Number of entries returned by each range query.
    pub range_size: u64,
    /// Base RNG seed; each thread derives its own deterministic stream.
    pub seed: u64,
    /// Fraction of inserts that update an existing (bulkloaded) key rather
    /// than inserting a fresh one.  The paper notes about 2/3 of inserts are
    /// updates.
    pub update_fraction: f64,
}

impl WorkloadSpec {
    /// A write-intensive skewed workload at a laptop-friendly scale.
    pub fn default_scaled() -> Self {
        WorkloadSpec {
            key_space: 1 << 20,
            bulkload_keys: (1 << 20) / 5 * 4,
            mix: Mix::WRITE_INTENSIVE,
            distribution: KeyDistribution::ScrambledZipfian { theta: 0.99 },
            range_size: 100,
            seed: 0x5EED,
            update_fraction: 2.0 / 3.0,
        }
    }

    /// Validate the specification.
    pub fn validate(&self) -> Result<(), String> {
        if self.key_space == 0 {
            return Err("key_space must be > 0".into());
        }
        if self.bulkload_keys > self.key_space {
            return Err("bulkload_keys cannot exceed key_space".into());
        }
        if !self.mix.is_valid() {
            return Err("operation mix does not sum to 100".into());
        }
        if !(0.0..=1.0).contains(&self.update_fraction) {
            return Err("update_fraction must be within [0, 1]".into());
        }
        match self.distribution {
            KeyDistribution::Zipfian { theta } | KeyDistribution::ScrambledZipfian { theta } => {
                if !(0.0..1.0).contains(&theta) {
                    return Err("zipfian theta must be in [0, 1)".into());
                }
            }
            KeyDistribution::Uniform => {}
        }
        Ok(())
    }

    /// The keys bulkloaded before the measured phase.
    ///
    /// Keys are spread evenly over the key space so that the tree is about
    /// `bulkload_keys / key_space` full everywhere (the paper bulkloads the
    /// tree 80 % full).
    pub fn bulkload_iter(&self) -> impl Iterator<Item = u64> + '_ {
        let stride = (self.key_space as f64 / self.bulkload_keys.max(1) as f64).max(1.0);
        (0..self.bulkload_keys).map(move |i| ((i as f64 * stride) as u64).min(self.key_space - 1))
    }

    /// Create the deterministic operation stream for one client thread.
    pub fn generator(&self, thread_id: u64) -> WorkloadGenerator {
        WorkloadGenerator::new(self.clone(), thread_id)
    }
}

/// One operation produced by the workload driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Look up `key`.
    Lookup {
        /// Target key.
        key: u64,
    },
    /// Insert or update `key` with `value`.
    Insert {
        /// Target key.
        key: u64,
        /// Value payload.
        value: u64,
    },
    /// Delete `key`.
    Delete {
        /// Target key.
        key: u64,
    },
    /// Scan `count` entries starting at `start_key`.
    Range {
        /// First key of the scan.
        start_key: u64,
        /// Number of entries requested.
        count: u64,
    },
}

impl Op {
    /// Whether the operation mutates the index.
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Insert { .. } | Op::Delete { .. })
    }
}

/// Deterministic per-thread operation stream.
#[derive(Debug)]
pub struct WorkloadGenerator {
    spec: WorkloadSpec,
    rng: StdRng,
    zipf: Option<ZipfianGenerator>,
    counter: u64,
    thread_id: u64,
}

impl WorkloadGenerator {
    fn new(spec: WorkloadSpec, thread_id: u64) -> Self {
        let zipf = match spec.distribution {
            KeyDistribution::Uniform => None,
            KeyDistribution::Zipfian { theta } | KeyDistribution::ScrambledZipfian { theta } => {
                Some(ZipfianGenerator::new(spec.key_space, theta))
            }
        };
        let rng = StdRng::seed_from_u64(spec.seed ^ (thread_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        WorkloadGenerator {
            spec,
            rng,
            zipf,
            counter: 0,
            thread_id,
        }
    }

    /// The thread id this stream was derived for.
    pub fn thread_id(&self) -> u64 {
        self.thread_id
    }

    fn next_key(&mut self) -> u64 {
        match (&self.spec.distribution, &self.zipf) {
            (KeyDistribution::Uniform, _) => self.rng.gen_range(0..self.spec.key_space),
            (KeyDistribution::Zipfian { .. }, Some(z)) => z.next_rank(&mut self.rng),
            (KeyDistribution::ScrambledZipfian { .. }, Some(z)) => z.next_scrambled(&mut self.rng),
            _ => unreachable!("zipfian generator missing"),
        }
    }

    /// Produce the next operation.
    pub fn next_op(&mut self) -> Op {
        self.counter += 1;
        let roll = self.rng.gen_range(0..100u8);
        let kind = self.spec.mix.pick(roll);
        let key = self.next_key();
        match kind {
            OpKind::Lookup => Op::Lookup { key },
            OpKind::Delete => Op::Delete { key },
            OpKind::RangeQuery => Op::Range {
                start_key: key,
                count: self.spec.range_size,
            },
            OpKind::Insert => {
                // A fraction of inserts target fresh keys; the rest update the
                // drawn (likely bulkloaded) key.
                let update: f64 = self.rng.gen();
                let key = if update < self.spec.update_fraction {
                    key
                } else {
                    // Fresh keys are drawn uniformly so new inserts spread over
                    // the whole tree (as YCSB's insert phase does).
                    self.rng.gen_range(0..self.spec.key_space)
                };
                let value = self
                    .thread_id
                    .wrapping_mul(1_000_003)
                    .wrapping_add(self.counter);
                Op::Insert { key, value }
            }
        }
    }

    /// Produce `n` operations.
    pub fn take_ops(&mut self, n: usize) -> Vec<Op> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_valid() {
        WorkloadSpec::default_scaled().validate().unwrap();
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut s = WorkloadSpec::default_scaled();
        s.key_space = 0;
        assert!(s.validate().is_err());

        let mut s = WorkloadSpec::default_scaled();
        s.bulkload_keys = s.key_space + 1;
        assert!(s.validate().is_err());

        let mut s = WorkloadSpec::default_scaled();
        s.distribution = KeyDistribution::Zipfian { theta: 1.5 };
        assert!(s.validate().is_err());

        let mut s = WorkloadSpec::default_scaled();
        s.update_fraction = 1.5;
        assert!(s.validate().is_err());
    }

    #[test]
    fn bulkload_covers_key_space_evenly() {
        let mut s = WorkloadSpec::default_scaled();
        s.key_space = 1000;
        s.bulkload_keys = 800;
        let keys: Vec<u64> = s.bulkload_iter().collect();
        assert_eq!(keys.len(), 800);
        assert!(keys.iter().all(|&k| k < 1000));
        // Strictly increasing (no duplicates) and spread out.
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert!(*keys.last().unwrap() >= 990);
    }

    #[test]
    fn generator_is_deterministic_per_thread_and_differs_across_threads() {
        let spec = WorkloadSpec::default_scaled();
        let a: Vec<Op> = spec.generator(1).take_ops(50);
        let b: Vec<Op> = spec.generator(1).take_ops(50);
        let c: Vec<Op> = spec.generator(2).take_ops(50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mix_proportions_are_respected() {
        let mut spec = WorkloadSpec::default_scaled();
        spec.mix = Mix::READ_INTENSIVE;
        let mut gen = spec.generator(0);
        let ops = gen.take_ops(10_000);
        let writes = ops.iter().filter(|o| o.is_write()).count();
        let frac = writes as f64 / ops.len() as f64;
        assert!((0.03..=0.07).contains(&frac), "write fraction {frac}");
    }

    #[test]
    fn generator_samples_all_four_kinds_in_proportion() {
        let mut spec = WorkloadSpec::default_scaled();
        spec.mix = Mix {
            insert_pct: 25,
            lookup_pct: 40,
            delete_pct: 15,
            range_pct: 20,
        };
        let mut gen = spec.generator(9);
        let n = 20_000usize;
        let mut counts = [0usize; 4];
        for op in gen.take_ops(n) {
            match op {
                Op::Insert { .. } => counts[0] += 1,
                Op::Lookup { .. } => counts[1] += 1,
                Op::Delete { .. } => counts[2] += 1,
                Op::Range { .. } => counts[3] += 1,
            }
        }
        for (observed, pct) in counts.into_iter().zip([25u32, 40, 15, 20]) {
            let expected = n * pct as usize / 100;
            let tolerance = n / 50; // 2% absolute slack on 20k samples
            assert!(
                observed.abs_diff(expected) <= tolerance,
                "kind share {observed} vs expected {expected} (pct {pct})"
            );
        }
    }

    #[test]
    fn range_ops_carry_requested_size() {
        let mut spec = WorkloadSpec::default_scaled();
        spec.mix = Mix::RANGE_ONLY;
        spec.range_size = 1000;
        let mut gen = spec.generator(3);
        for op in gen.take_ops(100) {
            match op {
                Op::Range { count, .. } => assert_eq!(count, 1000),
                other => panic!("unexpected op {other:?}"),
            }
        }
    }

    #[test]
    fn keys_stay_in_domain() {
        let mut spec = WorkloadSpec::default_scaled();
        spec.key_space = 4096;
        spec.bulkload_keys = 2048;
        for dist in [
            KeyDistribution::Uniform,
            KeyDistribution::Zipfian { theta: 0.99 },
            KeyDistribution::ScrambledZipfian { theta: 0.9 },
        ] {
            spec.distribution = dist;
            let mut gen = spec.generator(0);
            for op in gen.take_ops(5_000) {
                let key = match op {
                    Op::Lookup { key } | Op::Insert { key, .. } | Op::Delete { key } => key,
                    Op::Range { start_key, .. } => start_key,
                };
                assert!(key < 4096, "key {key} out of domain for {dist:?}");
            }
        }
    }
}
