//! Cache hit/miss/invalidation counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing index-cache effectiveness (Figure 15(c) plots the hit
/// ratio as the cache capacity grows).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
    top_hits: AtomicU64,
    top_misses: AtomicU64,
    refreshes: AtomicU64,
    pressure_evictions: AtomicU64,
    stale_rejections: AtomicU64,
}

impl CacheStats {
    /// Record a lookup that was served from the cache.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a lookup that missed the cache.
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an entry invalidated because fence keys or level did not match.
    pub fn record_invalidation(&self) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a capacity eviction.
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an eviction forced by a runtime budget shrink
    /// (`IndexCache::set_capacity_bytes` re-budgeting) rather than by
    /// ordinary insert-time capacity enforcement.  Pressure evictions are a
    /// *subset* of [`CacheStats::evictions`].
    pub fn record_pressure_eviction(&self) {
        self.pressure_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an insertion of a fresh entry.
    pub fn record_insert(&self) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an insert or top-level refresh rejected by the tombstone
    /// admission gate: the offered copy was not strictly newer than a
    /// coherence invalidation's tombstone version (the retire/re-cache race,
    /// caught).
    pub fn record_stale_rejection(&self) {
        self.stale_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Inserts/refreshes rejected by the tombstone admission gate.
    pub fn stale_rejections(&self) -> u64 {
        self.stale_rejections.load(Ordering::Relaxed)
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries invalidated after a fence/level mismatch.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Capacity evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries inserted.
    pub fn inserts(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed)
    }

    /// Record a type-❷ (top-level) search that found a covering node.
    pub fn record_top_hit(&self) {
        self.top_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a type-❷ search that found no covering node (the traversal
    /// falls back to the remote root).
    pub fn record_top_miss(&self) {
        self.top_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a type-❷ entry refreshed in place (structural-change refresh or
    /// lazy traversal repair) instead of merely scrubbed.
    pub fn record_refresh(&self) {
        self.refreshes.fetch_add(1, Ordering::Relaxed);
    }

    /// Type-❷ searches served from the always-cached top levels.
    pub fn top_hits(&self) -> u64 {
        self.top_hits.load(Ordering::Relaxed)
    }

    /// Type-❷ searches that found no covering node.
    pub fn top_misses(&self) -> u64 {
        self.top_misses.load(Ordering::Relaxed)
    }

    /// Type-❷ entries refreshed in place.
    pub fn refreshes(&self) -> u64 {
        self.refreshes.load(Ordering::Relaxed)
    }

    /// Evictions forced by runtime budget shrinks (a subset of
    /// [`CacheStats::evictions`]).
    pub fn pressure_evictions(&self) -> u64 {
        self.pressure_evictions.load(Ordering::Relaxed)
    }

    /// Hit ratio in `[0, 1]` (0 when no lookups were recorded).
    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Type-❷ hit ratio in `[0, 1]` (0 when no top searches were recorded).
    pub fn top_hit_ratio(&self) -> f64 {
        let h = self.top_hits() as f64;
        let m = self.top_misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_is_computed_safely() {
        let s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        s.record_hit();
        s.record_hit();
        s.record_hit();
        s.record_miss();
        assert!((s.hit_ratio() - 0.75).abs() < 1e-9);
        s.record_invalidation();
        s.record_eviction();
        s.record_insert();
        assert_eq!(s.invalidations(), 1);
        assert_eq!(s.evictions(), 1);
        assert_eq!(s.inserts(), 1);
    }

    #[test]
    fn top_level_counters_are_independent() {
        let s = CacheStats::default();
        assert_eq!(s.top_hit_ratio(), 0.0);
        s.record_top_hit();
        s.record_top_hit();
        s.record_top_miss();
        s.record_refresh();
        s.record_pressure_eviction();
        assert_eq!(s.top_hits(), 2);
        assert_eq!(s.top_misses(), 1);
        assert_eq!(s.refreshes(), 1);
        assert_eq!(s.pressure_evictions(), 1);
        assert_eq!(s.evictions(), 0, "pressure counter is its own tally");
        assert!((s.top_hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
        // Type-❶ counters are untouched.
        assert_eq!(s.hits() + s.misses(), 0);
    }
}
