//! Cache hit/miss/invalidation counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing index-cache effectiveness (Figure 15(c) plots the hit
/// ratio as the cache capacity grows).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
}

impl CacheStats {
    /// Record a lookup that was served from the cache.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a lookup that missed the cache.
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an entry invalidated because fence keys or level did not match.
    pub fn record_invalidation(&self) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a capacity eviction.
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an insertion of a fresh entry.
    pub fn record_insert(&self) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries invalidated after a fence/level mismatch.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Capacity evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries inserted.
    pub fn inserts(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed)
    }

    /// Hit ratio in `[0, 1]` (0 when no lookups were recorded).
    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_is_computed_safely() {
        let s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        s.record_hit();
        s.record_hit();
        s.record_hit();
        s.record_miss();
        assert!((s.hit_ratio() - 0.75).abs() < 1e-9);
        s.record_invalidation();
        s.record_eviction();
        s.record_insert();
        assert_eq!(s.invalidations(), 1);
        assert_eq!(s.evictions(), 1);
        assert_eq!(s.inserts(), 1);
    }
}
