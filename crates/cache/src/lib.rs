//! # sherman-cache — the compute-server index cache
//!
//! Tree traversal from the root to a leaf would cost one `RDMA_READ` per
//! level.  Sherman avoids that with a compute-server-side *index cache*
//! (§4.2.3) that stores copies of two kinds of internal nodes:
//!
//! * **type ❶** — internal nodes one level above the leaves (level 1), each of
//!   which maps a key range directly to a leaf address.  This set is large, so
//!   it is capacity-bounded and evicted with the power-of-two-choices rule:
//!   pick two cached entries at random, evict the least recently used one.
//! * **type ❷** — the highest two levels of the tree (including the root),
//!   which are tiny and always cached.
//!
//! A hit in the type-❶ cache turns an index operation into a single
//! leaf-node `RDMA_READ`.  The cache never needs a coherence protocol: every
//! node carries fence keys and its level, so a client that fetches a node
//! through a stale cached pointer detects the mismatch, invalidates the entry
//! and falls back to a traversal (§4.2.3).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod index_cache;
pub mod stats;

pub use index_cache::{CachedInternal, ChildRef, IndexCache, IndexCacheConfig};
pub use stats::CacheStats;
