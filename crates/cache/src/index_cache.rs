//! The index cache proper.

use crate::stats::CacheStats;
use parking_lot::RwLock;
use rand::Rng;
use sherman_sim::GlobalAddress;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One child pointer inside a cached internal node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChildRef {
    /// Smallest key routed to this child (separator key).
    pub separator: u64,
    /// The child node's address.
    pub child: GlobalAddress,
}

/// A compute-server-side copy of an internal tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedInternal {
    /// Remote address of the internal node this copy was made from.
    pub addr: GlobalAddress,
    /// Lower fence key (inclusive).
    pub fence_low: u64,
    /// Upper fence key (exclusive; `u64::MAX` means +∞).
    pub fence_high: u64,
    /// Level of the node (leaves are level 0, so type-❶ entries are level 1).
    pub level: u8,
    /// Child routed to for keys below the first separator.
    pub leftmost: GlobalAddress,
    /// Separator keys with their children, sorted by separator.
    pub children: Vec<ChildRef>,
    /// Node-level version (`front_version`) of the remote image this copy was
    /// made from.  Cache admission compares it against the tombstone version
    /// carried by coherence invalidations: a copy read *before* a retire must
    /// not be re-inserted *after* the invalidation was applied.
    pub version: u8,
}

impl CachedInternal {
    /// Whether `version` is strictly newer than `floor` under the node
    /// header's wrapping `u8` version arithmetic (serial-number comparison:
    /// newer means `version - floor` lands in `1..=127` mod 256).
    pub fn version_newer(version: u8, floor: u8) -> bool {
        let d = version.wrapping_sub(floor);
        (1..=127).contains(&d)
    }

    /// Whether `key` falls inside this node's fence interval.
    pub fn covers(&self, key: u64) -> bool {
        key >= self.fence_low && (self.fence_high == u64::MAX || key < self.fence_high)
    }

    /// The child a traversal for `key` descends into.
    pub fn child_for(&self, key: u64) -> GlobalAddress {
        debug_assert!(self.covers(key));
        match self.children.partition_point(|c| c.separator <= key) {
            0 => self.leftmost,
            n => self.children[n - 1].child,
        }
    }

    /// Children whose key ranges may intersect `[start, end]` (inclusive),
    /// in key order.  Used by range queries to read several leaves in one
    /// parallel batch.
    pub fn children_in_range(&self, start: u64, end: u64) -> Vec<GlobalAddress> {
        let mut out = Vec::new();
        let first = self.children.partition_point(|c| c.separator <= start);
        if first == 0 {
            out.push(self.leftmost);
        } else {
            out.push(self.children[first - 1].child);
        }
        for c in &self.children[first..] {
            if c.separator > end {
                break;
            }
            out.push(c.child);
        }
        out
    }
}

/// Capacity configuration of the index cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexCacheConfig {
    /// Total budget for type-❶ entries, in bytes.
    pub capacity_bytes: usize,
    /// Approximate cost of one cached internal node (typically the tree's node
    /// size); used for capacity accounting.
    pub entry_bytes: usize,
}

impl IndexCacheConfig {
    /// A cache holding roughly `capacity_bytes / entry_bytes` nodes.
    pub fn new(capacity_bytes: usize, entry_bytes: usize) -> Self {
        assert!(entry_bytes > 0);
        IndexCacheConfig {
            capacity_bytes,
            entry_bytes,
        }
    }

    /// Maximum number of type-❶ entries.
    pub fn max_entries(&self) -> usize {
        (self.capacity_bytes / self.entry_bytes).max(1)
    }
}

#[derive(Debug)]
struct CacheEntry {
    node: CachedInternal,
    last_used: AtomicU64,
}

/// The per-compute-server index cache.
#[derive(Debug)]
pub struct IndexCache {
    /// Per-entry cost used for capacity accounting (fixed at construction).
    entry_bytes: usize,
    /// The **live** capacity budget in bytes.  Atomic so that an external
    /// memory-pressure controller can re-budget the cache mid-run
    /// ([`IndexCache::set_capacity_bytes`]) while lookups proceed.
    capacity_bytes: AtomicUsize,
    /// Type-❶ entries keyed by their lower fence key.
    entries: RwLock<BTreeMap<u64, Arc<CacheEntry>>>,
    /// Type-❷ entries: the highest levels of the tree, always cached.  Shared
    /// immutable images — a structural commit builds one `Arc` and every
    /// compute server's refresh points at it.
    top: RwLock<Vec<Arc<CachedInternal>>>,
    /// Addresses invalidated by a coherence message, with the tombstone's
    /// node-level version.  Admission ([`IndexCache::insert_level1`] /
    /// [`IndexCache::refresh_top`]) rejects copies not strictly newer than
    /// the tombstone, closing the race where a traversal that read the node
    /// *before* the retire re-inserts it *after* the scrub.  A legitimately
    /// recycled address arrives with a newer version and clears its entry.
    tombstones: RwLock<HashMap<GlobalAddress, u8>>,
    clock: AtomicU64,
    count: AtomicUsize,
    stats: CacheStats,
}

impl IndexCache {
    /// Create an empty cache.
    pub fn new(config: IndexCacheConfig) -> Self {
        IndexCache {
            entry_bytes: config.entry_bytes,
            capacity_bytes: AtomicUsize::new(config.capacity_bytes),
            entries: RwLock::new(BTreeMap::new()),
            top: RwLock::new(Vec::new()),
            tombstones: RwLock::new(HashMap::new()),
            clock: AtomicU64::new(0),
            count: AtomicUsize::new(0),
            stats: CacheStats::default(),
        }
    }

    /// The cache's current configuration: the fixed per-entry cost plus the
    /// **live** capacity budget (which [`IndexCache::set_capacity_bytes`] may
    /// have changed since construction).
    pub fn config(&self) -> IndexCacheConfig {
        IndexCacheConfig {
            capacity_bytes: self.capacity_bytes(),
            entry_bytes: self.entry_bytes,
        }
    }

    /// The live capacity budget in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes.load(Ordering::Relaxed)
    }

    /// Re-budget the type-❶ cache at runtime ("Breaking Down Memory Walls"
    /// style adaptive memory management): install the new byte budget, then
    /// — if it shrank below the current working set — evict down to it with
    /// the same power-of-two-choices rule the insert path uses, recording
    /// each forced removal as a **pressure eviction**
    /// ([`CacheStats::pressure_evictions`]) on top of the ordinary eviction
    /// tally.  Growing the budget is instantaneous (entries refill lazily).
    pub fn set_capacity_bytes(&self, capacity_bytes: usize) {
        self.capacity_bytes.store(capacity_bytes, Ordering::Relaxed);
        self.evict_to_budget(true);
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of type-❶ entries currently cached.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Whether the type-❶ cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached route — type-❶ entries, type-❷ top levels, and
    /// tombstones — returning the cache to its freshly-constructed cold
    /// state.  Benchmarks use this to measure cold-start traversal cost
    /// without rebuilding the cluster; nothing on the hot path calls it.
    pub fn clear(&self) {
        self.entries.write().clear();
        self.top.write().clear();
        self.tombstones.write().clear();
        self.count.store(0, Ordering::Relaxed);
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    // ------------------------------------------------------------------
    // Type-❶: level-1 nodes
    // ------------------------------------------------------------------

    /// Look up the cached level-1 node covering `key` and return the leaf
    /// address a traversal for `key` would descend into, together with the
    /// cached node's remote address (needed for invalidation).
    pub fn lookup_leaf(&self, key: u64) -> Option<(GlobalAddress, GlobalAddress)> {
        self.lookup_covering(key)
            .map(|node| (node.child_for(key), node.addr))
    }

    /// Look up and clone the cached level-1 node covering `key`.
    pub fn lookup_covering(&self, key: u64) -> Option<CachedInternal> {
        let entries = self.entries.read();
        let candidate = entries.range(..=key).next_back().map(|(_, e)| Arc::clone(e));
        drop(entries);
        match candidate {
            Some(entry) if entry.node.covers(key) => {
                entry.last_used.store(self.tick(), Ordering::Relaxed);
                self.stats.record_hit();
                Some(entry.node.clone())
            }
            _ => {
                self.stats.record_miss();
                None
            }
        }
    }

    /// Whether a copy of `addr` stamped `version` may enter the cache, given
    /// any tombstone recorded by [`IndexCache::apply_invalidate`].  A copy
    /// strictly newer than the tombstone clears it (the address was
    /// legitimately recycled); anything else is the retire/re-cache race and
    /// is rejected (recorded as a stale rejection).
    fn admits(&self, addr: GlobalAddress, version: u8) -> bool {
        let floor = self.tombstones.read().get(&addr).copied();
        match floor {
            None => true,
            Some(floor) if CachedInternal::version_newer(version, floor) => {
                self.tombstones.write().remove(&addr);
                true
            }
            Some(_) => {
                self.stats.record_stale_rejection();
                false
            }
        }
    }

    /// The tombstone version recorded against `addr`, if it is currently
    /// barred from admission.
    pub fn tombstoned(&self, addr: GlobalAddress) -> Option<u8> {
        self.tombstones.read().get(&addr).copied()
    }

    /// Insert (or refresh) a level-1 node copy, evicting with the
    /// power-of-two-choices rule if the capacity budget is exceeded.
    /// Copies at or below a recorded tombstone version are rejected (the
    /// retire/re-cache race; see [`IndexCache::apply_invalidate`]).
    pub fn insert_level1(&self, node: CachedInternal) {
        debug_assert_eq!(node.level, 1, "type-1 cache stores level-1 nodes");
        if !self.admits(node.addr, node.version) {
            return;
        }
        let entry = Arc::new(CacheEntry {
            last_used: AtomicU64::new(self.tick()),
            node,
        });
        {
            let mut entries = self.entries.write();
            let prev = entries.insert(entry.node.fence_low, entry);
            if prev.is_none() {
                self.count.fetch_add(1, Ordering::Relaxed);
                self.stats.record_insert();
            }
        }
        self.evict_to_budget(false);
    }

    /// Evict with the power-of-two-choices rule until the entry count fits
    /// the live budget.  `pressure` marks evictions forced by a runtime
    /// budget shrink (they are tallied as *both* ordinary evictions and
    /// [`CacheStats::pressure_evictions`]).
    fn evict_to_budget(&self, pressure: bool) {
        let max = self.config().max_entries();
        while self.count.load(Ordering::Relaxed) > max {
            let victim = {
                let entries = self.entries.read();
                if entries.len() <= max {
                    break;
                }
                let mut rng = rand::thread_rng();
                let pick = |rng: &mut rand::rngs::ThreadRng| -> Option<(u64, u64)> {
                    let idx = rng.gen_range(0..entries.len());
                    entries
                        .iter()
                        .nth(idx)
                        .map(|(k, e)| (*k, e.last_used.load(Ordering::Relaxed)))
                };
                // Power of two choices: evict the least recently used of two
                // random candidates (§4.2.3).
                match (pick(&mut rng), pick(&mut rng)) {
                    (Some(a), Some(b)) => Some(if a.1 <= b.1 { a.0 } else { b.0 }),
                    (Some(a), None) => Some(a.0),
                    _ => None,
                }
            };
            let Some(key) = victim else { break };
            let mut entries = self.entries.write();
            if entries.remove(&key).is_some() {
                self.count.fetch_sub(1, Ordering::Relaxed);
                self.stats.record_eviction();
                if pressure {
                    self.stats.record_pressure_eviction();
                }
            }
        }
    }

    /// Remove the cached level-1 node whose lower fence key is `fence_low`
    /// (called when a fetched leaf's fence keys or level disagree with the
    /// cached pointer that led to it).
    pub fn invalidate(&self, fence_low: u64) {
        let mut entries = self.entries.write();
        if entries.remove(&fence_low).is_some() {
            self.count.fetch_sub(1, Ordering::Relaxed);
            self.stats.record_invalidation();
        }
    }

    /// Remove every cached node — level-1 *and* always-cached top-level — that
    /// references `addr` as a child or is a copy of `addr` itself (used after
    /// node frees).  A stale always-cached copy would otherwise route
    /// traversals to the freed node forever, so the top set must be scrubbed
    /// too; later traversals simply fall back to the remote root.
    pub fn invalidate_addr(&self, addr: GlobalAddress) {
        let refers = |n: &CachedInternal| {
            n.addr == addr || n.leftmost == addr || n.children.iter().any(|c| c.child == addr)
        };
        let mut entries = self.entries.write();
        let stale: Vec<u64> = entries
            .iter()
            .filter(|(_, e)| refers(&e.node))
            .map(|(k, _)| *k)
            .collect();
        for k in stale {
            if entries.remove(&k).is_some() {
                self.count.fetch_sub(1, Ordering::Relaxed);
                self.stats.record_invalidation();
            }
        }
        drop(entries);
        self.top.write().retain(|n| !refers(n));
    }

    /// Apply a coherence `Invalidate(addr, tombstone_version)` message:
    /// record the tombstone so the admission gate rejects any copy of `addr`
    /// at or below `tombstone_version`, then scrub every entry referencing
    /// the address (exactly [`IndexCache::invalidate_addr`]).  Recording the
    /// tombstone *before* scrubbing closes the retire/re-cache race — once
    /// this returns, a traversal that read the node before the retire can no
    /// longer re-insert it.
    pub fn apply_invalidate(&self, addr: GlobalAddress, tombstone_version: u8) {
        let mut tombstones = self.tombstones.write();
        match tombstones.entry(addr) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                // Keep the newest floor: a later retire of a recycled address
                // supersedes the older tombstone.
                if CachedInternal::version_newer(tombstone_version, *e.get()) {
                    e.insert(tombstone_version);
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(tombstone_version);
            }
        }
        drop(tombstones);
        self.invalidate_addr(addr);
    }

    // ------------------------------------------------------------------
    // Type-❷: the highest levels
    // ------------------------------------------------------------------

    /// Replace the always-cached copy of the tree's top levels.  The images
    /// are shared (`Arc`): a warm-up builds each node once and every compute
    /// server's cache points at the same allocation.
    pub fn set_top_levels(&self, nodes: Vec<Arc<CachedInternal>>) {
        *self.top.write() = nodes;
    }

    /// Search the top-level copies for the deepest node covering `key`;
    /// returns the child to continue the traversal from and that child's
    /// level (the cached node's level minus one).
    ///
    /// Stats are *not* recorded here: an answer shallower than the
    /// traversal's target level still forces a root-first walk, so only the
    /// caller can tell a usable hit from a miss (it records via
    /// [`CacheStats::record_top_hit`] / [`CacheStats::record_top_miss`]).
    pub fn search_top(&self, key: u64) -> Option<(GlobalAddress, u8)> {
        let top = self.top.read();
        top.iter()
            .filter(|n| n.covers(key))
            .min_by_key(|n| n.level)
            .map(|n| (n.child_for(key), n.level - 1))
    }

    /// Install (or replace in place) a top-level copy of `node`, keeping the
    /// set pruned to the tree's current top window.
    ///
    /// This is the **self-healing** half of the type-❷ cache: structural
    /// changes that scrub an entry (`invalidate_addr`) call this with the
    /// surviving sibling/parent image instead of leaving a hole, and
    /// cache-miss traversals call it with every top-window node they read on
    /// the way down (lazy repair).  `root_level` bounds the window: only
    /// nodes within one level of the root are kept (the same predicate the
    /// bulkload warm-up uses), and stale entries *above* the root — left
    /// behind by a root collapse — are pruned on the way.
    ///
    /// The image is shared: a structural commit builds one `Arc` and every
    /// subscriber's refresh stores the same allocation.  Copies at or below a
    /// recorded tombstone version are rejected (the retire/re-cache race; see
    /// [`IndexCache::apply_invalidate`]).
    pub fn refresh_top(&self, node: Arc<CachedInternal>, root_level: u8) {
        if node.level + 1 < root_level.max(1) || node.level > root_level {
            return;
        }
        if !self.admits(node.addr, node.version) {
            return;
        }
        let mut top = self.top.write();
        // A collapse lowered the root: entries above it can only mis-route.
        top.retain(|n| n.level <= root_level);
        match top.iter_mut().find(|n| n.addr == node.addr) {
            Some(slot) => *slot = node,
            None => top.push(node),
        }
        self.stats.record_refresh();
    }

    /// Number of cached top-level nodes.
    pub fn top_len(&self) -> usize {
        self.top.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> GlobalAddress {
        GlobalAddress::host(0, 1024 * n)
    }

    fn level1(fence_low: u64, fence_high: u64, children: &[(u64, u64)]) -> CachedInternal {
        CachedInternal {
            addr: addr(fence_low + 1_000_000),
            fence_low,
            fence_high,
            level: 1,
            leftmost: addr(fence_low),
            children: children
                .iter()
                .map(|&(sep, a)| ChildRef {
                    separator: sep,
                    child: addr(a),
                })
                .collect(),
            version: 1,
        }
    }

    #[test]
    fn child_routing_follows_separators() {
        let node = level1(100, 200, &[(120, 1), (150, 2), (180, 3)]);
        assert!(node.covers(100) && node.covers(199) && !node.covers(200) && !node.covers(99));
        assert_eq!(node.child_for(100), addr(100)); // leftmost
        assert_eq!(node.child_for(119), addr(100));
        assert_eq!(node.child_for(120), addr(1));
        assert_eq!(node.child_for(179), addr(2));
        assert_eq!(node.child_for(199), addr(3));
    }

    #[test]
    fn children_in_range_returns_key_ordered_cover() {
        let node = level1(0, u64::MAX, &[(10, 1), (20, 2), (30, 3)]);
        assert_eq!(node.children_in_range(12, 25), vec![addr(1), addr(2)]);
        assert_eq!(node.children_in_range(0, 5), vec![addr(0)]);
        assert_eq!(
            node.children_in_range(0, 100),
            vec![addr(0), addr(1), addr(2), addr(3)]
        );
    }

    #[test]
    fn lookup_hits_and_misses_are_counted() {
        let cache = IndexCache::new(IndexCacheConfig::new(1 << 20, 1024));
        cache.insert_level1(level1(0, 100, &[(50, 1)]));
        cache.insert_level1(level1(100, 200, &[(150, 2)]));

        let (leaf, from) = cache.lookup_leaf(60).unwrap();
        assert_eq!(leaf, addr(1));
        assert_eq!(from, addr(1_000_000));
        assert!(cache.lookup_leaf(120).is_some());
        // A key outside every cached interval misses.
        assert!(cache.lookup_leaf(500).is_none());
        assert_eq!(cache.stats().hits(), 2);
        assert_eq!(cache.stats().misses(), 1);
        assert!((cache.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn invalidation_removes_stale_entries() {
        let cache = IndexCache::new(IndexCacheConfig::new(1 << 20, 1024));
        cache.insert_level1(level1(0, 100, &[(50, 1)]));
        assert!(cache.lookup_leaf(10).is_some());
        cache.invalidate(0);
        assert!(cache.lookup_leaf(10).is_none());
        assert_eq!(cache.stats().invalidations(), 1);

        cache.insert_level1(level1(200, 300, &[(250, 7)]));
        cache.invalidate_addr(addr(7));
        assert!(cache.lookup_leaf(260).is_none());
    }

    #[test]
    fn capacity_is_enforced_with_two_choice_eviction() {
        // Room for 8 entries.
        let cache = IndexCache::new(IndexCacheConfig::new(8 * 1024, 1024));
        for i in 0..64u64 {
            cache.insert_level1(level1(i * 100, (i + 1) * 100, &[(i * 100 + 50, i)]));
        }
        assert!(cache.len() <= 8, "cache holds {} entries", cache.len());
        assert!(cache.stats().evictions() >= 56);
        // Recently inserted (and therefore recently used) entries are more
        // likely to survive; at least some lookups still hit.
        let hits_before = cache.stats().hits();
        for i in 56..64u64 {
            let _ = cache.lookup_leaf(i * 100 + 10);
        }
        assert!(cache.stats().hits() > hits_before);
    }

    #[test]
    fn top_levels_route_partial_traversals() {
        let cache = IndexCache::new(IndexCacheConfig::new(1 << 20, 1024));
        assert!(cache.search_top(42).is_none());
        // A two-level top: the root (level 3) and one level-2 node.
        let root = CachedInternal {
            addr: addr(999),
            fence_low: 0,
            fence_high: u64::MAX,
            level: 3,
            leftmost: addr(100),
            children: vec![ChildRef {
                separator: 1_000,
                child: addr(200),
            }],
            version: 1,
        };
        let mid = CachedInternal {
            addr: addr(100),
            fence_low: 0,
            fence_high: 1_000,
            level: 2,
            leftmost: addr(10),
            children: vec![ChildRef {
                separator: 500,
                child: addr(20),
            }],
            version: 1,
        };
        cache.set_top_levels(vec![Arc::new(root), Arc::new(mid)]);
        assert_eq!(cache.top_len(), 2);
        // The deepest covering node (level 2) routes the traversal.
        assert_eq!(cache.search_top(600), Some((addr(20), 1)));
        assert_eq!(cache.search_top(100), Some((addr(10), 1)));
        // Keys beyond the level-2 node fall back to the root.
        assert_eq!(cache.search_top(5_000), Some((addr(200), 2)));
    }

    #[test]
    fn refresh_top_replaces_scrubbed_entries_and_prunes_stale_roots() {
        let cache = IndexCache::new(IndexCacheConfig::new(1 << 20, 1024));
        let root = CachedInternal {
            addr: addr(999),
            fence_low: 0,
            fence_high: u64::MAX,
            level: 3,
            leftmost: addr(50),
            children: vec![],
            version: 1,
        };
        let mid = CachedInternal {
            addr: addr(100),
            fence_low: 0,
            fence_high: u64::MAX,
            level: 2,
            leftmost: addr(10),
            children: vec![],
            version: 1,
        };
        cache.set_top_levels(vec![Arc::new(root.clone()), Arc::new(mid.clone())]);

        // A structural change scrubs the mid node, then refreshes it with the
        // updated (version-bumped) image: the hole heals instead of
        // persisting.
        cache.apply_invalidate(addr(100), 1);
        assert_eq!(cache.top_len(), 1);
        let updated = CachedInternal {
            leftmost: addr(11),
            version: 2,
            ..mid.clone()
        };
        cache.refresh_top(Arc::new(updated.clone()), 3);
        assert_eq!(cache.top_len(), 2);
        assert_eq!(cache.search_top(5), Some((addr(11), 1)));
        assert_eq!(cache.stats().refreshes(), 1);

        // Refreshing the same address replaces in place (no duplicates).
        cache.refresh_top(Arc::new(updated), 3);
        assert_eq!(cache.top_len(), 2);

        // Nodes below the top window are rejected; a refresh under a lowered
        // root prunes entries stranded above it.
        cache.refresh_top(
            Arc::new(CachedInternal {
                addr: addr(7),
                level: 1,
                ..mid.clone()
            }),
            3,
        );
        assert_eq!(cache.top_len(), 2, "level-1 node is below the 3-level top window");
        cache.refresh_top(
            Arc::new(CachedInternal {
                addr: addr(8),
                level: 2,
                ..mid
            }),
            2,
        );
        assert_eq!(
            cache.top_len(),
            2,
            "the stale level-3 root is pruned, the level-2 refresh is kept"
        );
        assert!(cache.search_top(5).is_some());
    }

    #[test]
    fn tombstones_reject_stale_reinserts_until_a_newer_version_arrives() {
        let cache = IndexCache::new(IndexCacheConfig::new(1 << 20, 1024));
        let node = level1(0, 100, &[(50, 1)]);
        cache.insert_level1(node.clone());
        assert_eq!(cache.len(), 1);

        // A coherence invalidation scrubs the entry and records the
        // tombstone's version (the retired image bumped to 2).
        cache.apply_invalidate(node.addr, 2);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.tombstoned(node.addr), Some(2));

        // The retire/re-cache race: a traversal that read the node before
        // the retire tries to re-insert its stale copy — rejected.
        cache.insert_level1(node.clone());
        assert_eq!(cache.len(), 0, "stale copy must not re-enter the cache");
        assert_eq!(cache.stats().stale_rejections(), 1);

        // A stale top-level refresh is rejected by the same gate.
        cache.refresh_top(
            Arc::new(CachedInternal {
                level: 2,
                ..node.clone()
            }),
            2,
        );
        assert_eq!(cache.top_len(), 0);
        assert_eq!(cache.stats().stale_rejections(), 2);

        // The address is recycled: the first image written there is stamped
        // above the tombstone and is admitted, clearing the tombstone.
        let recycled = CachedInternal {
            version: 3,
            ..node
        };
        cache.insert_level1(recycled.clone());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.tombstoned(recycled.addr), None);
    }

    #[test]
    fn version_comparison_wraps_like_the_node_header() {
        assert!(CachedInternal::version_newer(3, 2));
        assert!(!CachedInternal::version_newer(2, 2));
        assert!(!CachedInternal::version_newer(1, 2));
        // Wrap-around: 0 is newer than 255, 255 is not newer than 0.
        assert!(CachedInternal::version_newer(0, 255));
        assert!(!CachedInternal::version_newer(255, 0));
    }

    #[test]
    fn runtime_shrink_evicts_down_to_the_new_budget() {
        // Room for 16 entries, filled exactly to capacity.
        let cache = IndexCache::new(IndexCacheConfig::new(16 * 1024, 1024));
        for i in 0..16u64 {
            cache.insert_level1(level1(i * 100, (i + 1) * 100, &[(i * 100 + 50, i)]));
        }
        assert_eq!(cache.len(), 16);
        assert_eq!(cache.stats().evictions(), 0);

        // A 4x budget shrink forces the working set down immediately.
        cache.set_capacity_bytes(4 * 1024);
        assert_eq!(cache.capacity_bytes(), 4 * 1024);
        assert_eq!(cache.config().max_entries(), 4);
        assert!(cache.len() <= 4, "cache holds {} entries", cache.len());
        assert_eq!(cache.stats().pressure_evictions(), 12);
        assert_eq!(
            cache.stats().evictions(),
            12,
            "pressure evictions are also ordinary evictions"
        );

        // Later inserts keep honouring the shrunken budget, and those
        // evictions are *not* pressure evictions.
        for i in 16..24u64 {
            cache.insert_level1(level1(i * 100, (i + 1) * 100, &[(i * 100 + 50, i)]));
        }
        assert!(cache.len() <= 4);
        assert_eq!(cache.stats().pressure_evictions(), 12);
        assert!(cache.stats().evictions() >= 20);
    }

    #[test]
    fn runtime_grow_is_instant_and_evicts_nothing() {
        let cache = IndexCache::new(IndexCacheConfig::new(4 * 1024, 1024));
        for i in 0..4u64 {
            cache.insert_level1(level1(i * 100, (i + 1) * 100, &[(i * 100 + 50, i)]));
        }
        cache.set_capacity_bytes(64 * 1024);
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().evictions(), 0);
        assert_eq!(cache.stats().pressure_evictions(), 0);
        // The enlarged budget admits more entries without eviction.
        for i in 4..32u64 {
            cache.insert_level1(level1(i * 100, (i + 1) * 100, &[(i * 100 + 50, i)]));
        }
        assert_eq!(cache.len(), 32);
        assert_eq!(cache.stats().evictions(), 0);
    }

    #[test]
    fn reinserting_same_fence_updates_in_place() {
        let cache = IndexCache::new(IndexCacheConfig::new(1 << 20, 1024));
        cache.insert_level1(level1(0, 100, &[(50, 1)]));
        cache.insert_level1(level1(0, 100, &[(50, 2)]));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup_leaf(60).unwrap().0, addr(2));
    }
}
