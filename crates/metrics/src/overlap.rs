//! Overlap gauges for the split-phase fabric.
//!
//! A blocking client keeps exactly one verb in flight, so its round trips
//! serialize end-to-end.  The pipelined scheduler multiplexes several logical
//! operations over one fabric context, and these gauges quantify how much of
//! that parallelism actually materialized on the virtual clock:
//!
//! * **in-flight depth** — how many verbs were outstanding when each round
//!   trip posted (max and mean),
//! * **overlapped round trips** — how many round trips had their service
//!   window overlap another outstanding verb's window,
//! * **overlap factor** — the sum of every verb's post→completion window
//!   divided by the elapsed virtual time: `1.0` means fully serial, `N`
//!   means `N` round trips were hidden inside each other on average.

use serde::Serialize;

/// A plain-old-data summary of one run's verb overlap, built from the fabric
/// client's counters (`ClientStats`) plus the run's elapsed virtual time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct OverlapGauges {
    /// Round trips posted during the run.
    pub round_trips: u64,
    /// Round trips whose service window overlapped another outstanding verb.
    pub overlapped_round_trips: u64,
    /// High-water mark of simultaneously outstanding verbs.
    pub max_in_flight: u64,
    /// Sum over posts of the in-flight depth right after each post.
    pub in_flight_posts: u64,
    /// Sum of every verb's post→completion window (virtual ns): the *serial*
    /// time the verbs would have cost end-to-end.
    pub serial_verb_ns: u64,
    /// Elapsed virtual time (ns): one run's wall time for a single-client
    /// gauge, the *sum* of per-thread elapsed times after [`OverlapGauges::merge`]
    /// — so `overlap_factor()` stays a per-thread ratio either way.
    pub elapsed_ns: u64,
}

impl OverlapGauges {
    /// Mean number of verbs in flight at post time (1.0 for a blocking
    /// client).
    pub fn mean_in_flight(&self) -> f64 {
        if self.round_trips == 0 {
            0.0
        } else {
            self.in_flight_posts as f64 / self.round_trips as f64
        }
    }

    /// Fraction of round trips that overlapped another outstanding verb.
    pub fn overlapped_fraction(&self) -> f64 {
        if self.round_trips == 0 {
            0.0
        } else {
            self.overlapped_round_trips as f64 / self.round_trips as f64
        }
    }

    /// Serial verb time over elapsed time: how many round trips were hidden
    /// inside each other on average (≈1.0 when blocking, >1 when pipelined).
    pub fn overlap_factor(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.serial_verb_ns as f64 / self.elapsed_ns as f64
        }
    }

    /// Merge another thread's gauges into this one: counts add, the
    /// high-water mark takes the max, and elapsed times **add** — the gauges
    /// measure *per-thread* latency hiding, so the denominator is aggregate
    /// thread-time, keeping a fully blocking multi-thread run's
    /// `overlap_factor()` at ≈1.0 instead of inflating it by cross-thread
    /// parallelism.
    pub fn merge(&mut self, other: &OverlapGauges) {
        self.round_trips += other.round_trips;
        self.overlapped_round_trips += other.overlapped_round_trips;
        self.max_in_flight = self.max_in_flight.max(other.max_in_flight);
        self.in_flight_posts += other.in_flight_posts;
        self.serial_verb_ns += other.serial_verb_ns;
        self.elapsed_ns += other.elapsed_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_run_reads_as_serial() {
        let g = OverlapGauges {
            round_trips: 10,
            overlapped_round_trips: 0,
            max_in_flight: 1,
            in_flight_posts: 10,
            serial_verb_ns: 20_000,
            elapsed_ns: 20_000,
        };
        assert_eq!(g.mean_in_flight(), 1.0);
        assert_eq!(g.overlapped_fraction(), 0.0);
        assert_eq!(g.overlap_factor(), 1.0);
    }

    #[test]
    fn pipelined_run_shows_overlap() {
        let g = OverlapGauges {
            round_trips: 8,
            overlapped_round_trips: 6,
            max_in_flight: 4,
            in_flight_posts: 24,
            serial_verb_ns: 32_000,
            elapsed_ns: 10_000,
        };
        assert!(g.mean_in_flight() > 2.9);
        assert!(g.overlapped_fraction() > 0.7);
        assert!(g.overlap_factor() > 3.0);
    }

    #[test]
    fn merge_adds_counts_and_maxes_highwater() {
        let mut a = OverlapGauges {
            round_trips: 4,
            overlapped_round_trips: 1,
            max_in_flight: 2,
            in_flight_posts: 6,
            serial_verb_ns: 8_000,
            elapsed_ns: 5_000,
        };
        let b = OverlapGauges {
            round_trips: 6,
            overlapped_round_trips: 5,
            max_in_flight: 4,
            in_flight_posts: 20,
            serial_verb_ns: 12_000,
            elapsed_ns: 4_000,
        };
        a.merge(&b);
        assert_eq!(a.round_trips, 10);
        assert_eq!(a.overlapped_round_trips, 6);
        assert_eq!(a.max_in_flight, 4);
        assert_eq!(a.in_flight_posts, 26);
        assert_eq!(a.serial_verb_ns, 20_000);
        assert_eq!(a.elapsed_ns, 9_000, "elapsed sums: aggregate thread-time");
    }

    #[test]
    fn merged_blocking_threads_still_read_as_serial() {
        // Two fully blocking threads: each has serial verb time ≈ its own
        // elapsed.  The merged factor must stay ≈1.0, not ≈thread-count.
        let mut a = OverlapGauges {
            round_trips: 10,
            overlapped_round_trips: 0,
            max_in_flight: 1,
            in_flight_posts: 10,
            serial_verb_ns: 20_000,
            elapsed_ns: 20_000,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.overlap_factor(), 1.0);
        assert_eq!(a.mean_in_flight(), 1.0);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let g = OverlapGauges::default();
        assert_eq!(g.mean_in_flight(), 0.0);
        assert_eq!(g.overlapped_fraction(), 0.0);
        assert_eq!(g.overlap_factor(), 0.0);
    }
}
