//! # sherman-metrics — measurement utilities for the Sherman reproduction
//!
//! The paper reports throughput (Mops), median / 99th-percentile latency, and
//! several internal distributions (round trips per operation, write sizes,
//! read retries).  This crate provides the small, dependency-free measurement
//! toolkit used by the benchmark harness and the examples:
//!
//! * [`LatencyHistogram`] — a log-bucketed histogram with small relative
//!   error, suitable for virtual-nanosecond latencies spanning `1 ns ..= ~1 h`,
//! * [`CountHistogram`] — an exact histogram over small integer values
//!   (round trips, retries),
//! * [`SizeHistogram`] — an exact histogram over byte sizes with helpers for
//!   CDF-style reporting,
//! * [`ThroughputAggregator`] and [`RunSummary`] — combine per-thread
//!   measurements into the rows the paper's tables print,
//! * [`EpochGauges`] — observability for the epoch-based reclamation
//!   subsystem (epoch lag, pinned readers, pinned buckets),
//! * [`OverlapGauges`] — observability for the split-phase fabric: in-flight
//!   verb depth and overlapped-vs-serial virtual time under the pipelined
//!   scheduler,
//! * [`BackpressureCounters`] — observability for allocation under memory
//!   pressure: chunk denials, free-list rescue reuses, and typed exhaustion
//!   events instead of panics,
//! * [`CoherenceGauges`] — observability for the fabric-delivered cache
//!   coherence channel: messages posted/applied, apply lag in virtual ns,
//!   and stale hits served during the window,
//! * [`OffloadGauges`] — observability for adaptive server-side traversal
//!   offload: placement decisions, win/loss outcomes, interpreter declines,
//!   and the read-latency EWMA the policy thresholds against.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod backpressure;
pub mod coherence;
pub mod counts;
pub mod epoch;
pub mod latency;
pub mod offload;
pub mod overlap;
pub mod space;
pub mod summary;

pub use backpressure::{BackpressureCounters, BackpressureSnapshot};
pub use coherence::{CoherenceCounters, CoherenceGauges};
pub use counts::{CountHistogram, SizeHistogram};
pub use epoch::EpochGauges;
pub use latency::LatencyHistogram;
pub use offload::{OffloadCounters, OffloadGauges};
pub use overlap::OverlapGauges;
pub use space::{SpaceCounters, SpaceSnapshot};
pub use summary::{RunSummary, ThreadReport, ThroughputAggregator};
