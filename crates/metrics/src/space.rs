//! Counters for structural-delete and space-reclamation events.
//!
//! The paper never shrinks the tree, so these counters have no Figure to
//! match; they exist so that the churn benchmarks can report how much remote
//! memory structural deletes reclaim (merged nodes, retired addresses,
//! reused addresses) and derive a space-amplification figure from them.
//!
//! Merges are additionally broken down by **direction**: a right merge folds
//! a node's right B-link sibling into it, a left merge folds the node into
//! its left sibling (the parent-guided path taken when the node is the
//! rightmost child under its parent and therefore has no right sibling to
//! absorb).  A long churn run on a direction-complete merge engine shows both
//! kinds; zero left merges is the signature of the old rightmost-child leak.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters for structural tree-maintenance events.
///
/// One instance is shared by every client of a cluster; increments are relaxed
/// atomics because the counters are observability-only.
#[derive(Debug, Default)]
pub struct SpaceCounters {
    leaf_merges: AtomicU64,
    internal_merges: AtomicU64,
    left_merges: AtomicU64,
    rebalances: AtomicU64,
    internal_rebalances: AtomicU64,
    root_collapses: AtomicU64,
}

impl SpaceCounters {
    /// Create zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one leaf merge (two adjacent leaves folded into one).
    pub fn record_leaf_merge(&self) {
        self.leaf_merges.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one internal-node merge.
    pub fn record_internal_merge(&self) {
        self.internal_merges.fetch_add(1, Ordering::Relaxed);
    }

    /// Record that a merge ran in the **left** direction: the underfull node
    /// (the rightmost child under its parent) was folded into its left
    /// sibling.  Incremented *in addition to* the leaf/internal merge counter.
    pub fn record_left_merge(&self) {
        self.left_merges.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one leaf rebalance (entries moved between sibling leaves,
    /// nothing freed).
    pub fn record_rebalance(&self) {
        self.rebalances.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one internal rebalance (separators redistributed between
    /// sibling internal nodes whose combined entries do not fit in one node).
    pub fn record_internal_rebalance(&self) {
        self.internal_rebalances.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one root collapse (a single-child root was replaced by its
    /// child).
    pub fn record_root_collapse(&self) {
        self.root_collapses.fetch_add(1, Ordering::Relaxed);
    }

    /// Capture the current values.
    pub fn snapshot(&self) -> SpaceSnapshot {
        SpaceSnapshot {
            leaf_merges: self.leaf_merges.load(Ordering::Relaxed),
            internal_merges: self.internal_merges.load(Ordering::Relaxed),
            left_merges: self.left_merges.load(Ordering::Relaxed),
            rebalances: self.rebalances.load(Ordering::Relaxed),
            internal_rebalances: self.internal_rebalances.load(Ordering::Relaxed),
            root_collapses: self.root_collapses.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`SpaceCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SpaceSnapshot {
    /// Leaf pairs folded into one leaf.
    pub leaf_merges: u64,
    /// Internal-node pairs folded into one node.
    pub internal_merges: u64,
    /// Merges (leaf or internal) that ran in the left direction — the
    /// underfull rightmost child folded into its left sibling.  Also counted
    /// in `leaf_merges` / `internal_merges`.
    pub left_merges: u64,
    /// Leaf rebalances that moved entries without freeing a node.
    pub rebalances: u64,
    /// Internal rebalances that redistributed separators without freeing a
    /// node.
    pub internal_rebalances: u64,
    /// Root nodes collapsed into their single remaining child.
    pub root_collapses: u64,
}

impl SpaceSnapshot {
    /// Total structural merge operations (leaf + internal).
    pub fn merges(&self) -> u64 {
        self.leaf_merges + self.internal_merges
    }

    /// Merges that ran in the right direction (a right sibling was absorbed).
    pub fn right_merges(&self) -> u64 {
        self.merges().saturating_sub(self.left_merges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = SpaceCounters::new();
        c.record_leaf_merge();
        c.record_leaf_merge();
        c.record_left_merge();
        c.record_internal_merge();
        c.record_rebalance();
        c.record_internal_rebalance();
        c.record_root_collapse();
        let s = c.snapshot();
        assert_eq!(s.leaf_merges, 2);
        assert_eq!(s.internal_merges, 1);
        assert_eq!(s.left_merges, 1);
        assert_eq!(s.rebalances, 1);
        assert_eq!(s.internal_rebalances, 1);
        assert_eq!(s.root_collapses, 1);
        assert_eq!(s.merges(), 3);
        assert_eq!(s.right_merges(), 2);
    }

    #[test]
    fn default_snapshot_is_zero() {
        assert_eq!(SpaceCounters::new().snapshot(), SpaceSnapshot::default());
    }
}
