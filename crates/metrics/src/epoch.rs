//! Gauges for the epoch-based reclamation (EBR) subsystem.
//!
//! The reclamation path (see `sherman_memserver`) pins a global epoch on
//! every tree operation and buckets retired node addresses by retirement
//! epoch; a bucket is recycled only once every pinned reader has advanced
//! past it.  These gauges make that machinery observable:
//!
//! * **epoch lag** — how far the oldest pinned reader trails the global
//!   epoch.  A persistently growing lag means a reader is stalled and
//!   reclamation is deferred behind it,
//! * **pinned buckets** — retired addresses whose recycling is currently
//!   blocked by a pinned reader (the memory a stall is holding hostage).

use serde::Serialize;

/// A point-in-time snapshot of the epoch-reclamation state.
///
/// Produced by the memory pool (`epoch_gauges()`); this crate only defines
/// the data shape so benches and tests can report it uniformly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct EpochGauges {
    /// The next epoch a retirement will be stamped with (equivalently: the
    /// number of retirements so far, plus one).
    pub global_epoch: u64,
    /// The oldest epoch any registered reader is currently pinned at.  Equal
    /// to [`EpochGauges::global_epoch`] when no reader is pinned, so that
    /// [`EpochGauges::epoch_lag`] reads zero at quiescence.
    pub min_pinned_epoch: u64,
    /// `global_epoch - min_pinned_epoch`: how far the oldest pinned reader
    /// trails the retirement frontier.  Zero when no reader is pinned.
    pub epoch_lag: u64,
    /// Readers registered with the epoch registry (one per tree client, plus
    /// any explicitly registered observers).
    pub registered_readers: u64,
    /// Readers currently inside a pinned section.
    pub pinned_readers: u64,
    /// Retired node addresses whose recycling is blocked by a pinned reader.
    pub pinned_buckets: u64,
    /// Total retired node addresses not yet moved to the ready pool
    /// (includes the pinned buckets).
    pub quarantined: u64,
}

impl EpochGauges {
    /// Assemble gauges from the raw registry readings.  `min_pinned` is
    /// `None` when no reader is pinned; the lag is then zero by definition.
    pub fn from_raw(
        global_epoch: u64,
        min_pinned: Option<u64>,
        registered_readers: u64,
        pinned_readers: u64,
        pinned_buckets: u64,
        quarantined: u64,
    ) -> Self {
        let min_pinned_epoch = min_pinned.unwrap_or(global_epoch);
        EpochGauges {
            global_epoch,
            min_pinned_epoch,
            epoch_lag: global_epoch.saturating_sub(min_pinned_epoch),
            registered_readers,
            pinned_readers,
            pinned_buckets,
            quarantined,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_is_zero_when_nothing_is_pinned() {
        let g = EpochGauges::from_raw(42, None, 3, 0, 0, 5);
        assert_eq!(g.min_pinned_epoch, 42);
        assert_eq!(g.epoch_lag, 0);
        assert_eq!(g.quarantined, 5);
    }

    #[test]
    fn lag_measures_the_oldest_pin() {
        let g = EpochGauges::from_raw(100, Some(60), 4, 2, 7, 9);
        assert_eq!(g.epoch_lag, 40);
        assert_eq!(g.pinned_readers, 2);
        assert_eq!(g.pinned_buckets, 7);
    }

    #[test]
    fn default_is_all_zero() {
        assert_eq!(EpochGauges::default(), EpochGauges::from_raw(0, None, 0, 0, 0, 0));
    }
}
