//! Log-bucketed latency histogram.
//!
//! Latencies in the Sherman evaluation span three orders of magnitude (a few
//! microseconds for uncontended operations, tens of milliseconds for the
//! FG-style lock collapse under skew), so a fixed-width histogram would either
//! be enormous or inaccurate.  We use base-2 major buckets with a fixed number
//! of linear sub-buckets per octave, giving a bounded relative error of
//! `1/SUB_BUCKETS` (≈1.6 %) with a few KiB of memory — the same idea as HDR
//! histograms, implemented here to stay within the allowed dependency set.

use serde::Serialize;

/// Number of linear sub-buckets per power-of-two octave.
const SUB_BUCKETS: usize = 64;
/// Number of octaves covered (2^48 ns ≈ 78 hours, far beyond any experiment).
const OCTAVES: usize = 48;

/// A log-bucketed histogram of non-negative `u64` samples (nanoseconds).
#[derive(Debug, Clone, Serialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0u64; SUB_BUCKETS * OCTAVES],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros() as usize; // floor(log2(value))
        let shift = octave - (SUB_BUCKETS.trailing_zeros() as usize);
        let sub = (value >> shift) as usize - SUB_BUCKETS;
        let idx = (octave - SUB_BUCKETS.trailing_zeros() as usize + 1) * SUB_BUCKETS + sub;
        idx.min(SUB_BUCKETS * OCTAVES - 1)
    }

    fn bucket_value(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let octave = index / SUB_BUCKETS - 1 + SUB_BUCKETS.trailing_zeros() as usize;
        let sub = (index % SUB_BUCKETS) as u64 + SUB_BUCKETS as u64;
        // Representative value: the lower edge of the bucket.
        sub << (octave - SUB_BUCKETS.trailing_zeros() as usize)
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]` (lower-edge approximation).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i).max(self.min()).min(self.max);
            }
        }
        self.max
    }

    /// Median (50th percentile).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = LatencyHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.quantile(1.0), 63);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = LatencyHistogram::new();
        // Latencies from 1 µs to ~20 ms, uniformly spread.
        let samples: Vec<u64> = (0..10_000u64).map(|i| 1_000 + i * 2_000).collect();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let exact = sorted[((sorted.len() as f64 * q) as usize).min(sorted.len() - 1)];
            let approx = h.quantile(q);
            let rel = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(
                rel < 0.05,
                "quantile {q}: approx {approx} vs exact {exact} (rel err {rel})"
            );
        }
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            a.record(v);
        }
        for v in [1_000_000u64, 2_000_000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 2_000_000);
        assert!(a.p99() >= 1_000_000);
    }

    #[test]
    fn mean_matches_sum() {
        let mut h = LatencyHistogram::new();
        for v in [5u64, 15, 25, 35] {
            h.record(v);
        }
        assert!((h.mean() - 20.0).abs() < 1e-9);
    }
}
