//! Server-side traversal-offload gauges.
//!
//! The adaptive placement policy ([FlexKV/Outback-style index offloading)
//! decides per operation whether a cache-miss traversal runs as a chain of
//! one-sided reads (client-side) or as one typed RPC the memory server's
//! bounded interpreter executes (server-side).  These counters make that
//! decision loop observable:
//!
//! * **decisions / offloaded / local** — how often each arm was taken,
//! * **wins / losses** — offloaded ops that saved at least one dependent
//!   round trip vs ones the server declined or the client had to redo,
//! * **declined** — interpreter give-ups (torn image, freed node, fence
//!   miss, budget) that fell back to the local path,
//! * **stale_rejects** — server replies the client's tombstone admission
//!   floor rejected (the leaf image predated a known free/recycle),
//! * **ewma_read_ns** — the client-side dependent-read latency estimate the
//!   adaptive policy thresholds against,
//! * **ewma_rpc_ns** — the observed round-trip latency of offloaded RPCs;
//!   unlike the modeled cost it includes queueing at the memory server's
//!   wimpy core, which is what makes the adaptive policy back off when
//!   every client piles onto the same home server.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters behind [`OffloadGauges`]; one per compute server,
/// owned by the cluster and bumped by the ops state machines.
#[derive(Debug, Default)]
pub struct OffloadCounters {
    ewma_read_ns: AtomicU64,
    ewma_rpc_ns: AtomicU64,
    decisions: AtomicU64,
    offloaded: AtomicU64,
    local: AtomicU64,
    wins: AtomicU64,
    losses: AtomicU64,
    declined: AtomicU64,
    stale_rejects: AtomicU64,
}

impl OffloadCounters {
    /// Feed one completed dependent read's service time into the EWMA the
    /// adaptive policy thresholds against (α = 1/8).
    pub fn observe_read_ns(&self, ns: u64) {
        let cur = self.ewma_read_ns.load(Ordering::Relaxed);
        let next = if cur == 0 { ns } else { cur - cur / 8 + ns / 8 };
        self.ewma_read_ns.store(next, Ordering::Relaxed);
    }

    /// Current dependent-read latency estimate in nanoseconds (0 until the
    /// first read is observed).
    pub fn ewma_read_ns(&self) -> u64 {
        self.ewma_read_ns.load(Ordering::Relaxed)
    }

    /// Feed one completed offload RPC's round-trip time into the EWMA
    /// (α = 1/8).  This is the *observed* cost of the server-side arm —
    /// service queueing included — where the config-derived estimate only
    /// models an unloaded server.
    pub fn observe_rpc_ns(&self, ns: u64) {
        let cur = self.ewma_rpc_ns.load(Ordering::Relaxed);
        let next = if cur == 0 { ns } else { cur - cur / 8 + ns / 8 };
        self.ewma_rpc_ns.store(next, Ordering::Relaxed);
    }

    /// Current offload-RPC latency estimate in nanoseconds (0 until the
    /// first RPC completes).
    pub fn ewma_rpc_ns(&self) -> u64 {
        self.ewma_rpc_ns.load(Ordering::Relaxed)
    }

    /// Record one placement decision and which arm it took.
    pub fn record_decision(&self, offloaded: bool) {
        self.decisions.fetch_add(1, Ordering::Relaxed);
        if offloaded {
            self.offloaded.fetch_add(1, Ordering::Relaxed);
        } else {
            self.local.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record an offloaded op whose reply resolved the traversal (saved the
    /// dependent read chain).
    pub fn record_win(&self) {
        self.wins.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an offloaded op that still had to fall back to the local path
    /// (the RPC was pure overhead).
    pub fn record_loss(&self) {
        self.losses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a server-side decline (torn image, freed node, fence miss, or
    /// exhausted budget).
    pub fn record_declined(&self) {
        self.declined.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a server reply rejected by the client's tombstone admission
    /// floor (the returned node image predated a known free/recycle).
    pub fn record_stale_reject(&self) {
        self.stale_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-old-data snapshot of the current counter values.
    pub fn snapshot(&self) -> OffloadGauges {
        OffloadGauges {
            decisions: self.decisions.load(Ordering::Relaxed),
            offloaded: self.offloaded.load(Ordering::Relaxed),
            local: self.local.load(Ordering::Relaxed),
            wins: self.wins.load(Ordering::Relaxed),
            losses: self.losses.load(Ordering::Relaxed),
            declined: self.declined.load(Ordering::Relaxed),
            stale_rejects: self.stale_rejects.load(Ordering::Relaxed),
            ewma_read_ns: self.ewma_read_ns.load(Ordering::Relaxed),
            ewma_rpc_ns: self.ewma_rpc_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain-old-data snapshot of one (or a merged set of) compute servers'
/// offload counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct OffloadGauges {
    /// Placement decisions taken at cache-miss (and, under `Always`,
    /// cache-hit) boundaries.
    pub decisions: u64,
    /// Decisions that posted a server-side RPC.
    pub offloaded: u64,
    /// Decisions that stayed on the client-side one-sided path.
    pub local: u64,
    /// Offloaded ops whose reply resolved the traversal.
    pub wins: u64,
    /// Offloaded ops that fell back to the local path anyway.
    pub losses: u64,
    /// Server-side interpreter declines.
    pub declined: u64,
    /// Replies rejected by the tombstone admission floor.
    pub stale_rejects: u64,
    /// Dependent-read latency EWMA (ns); max across merged servers.
    pub ewma_read_ns: u64,
    /// Offload-RPC round-trip latency EWMA (ns), queueing included; max
    /// across merged servers.
    pub ewma_rpc_ns: u64,
}

impl OffloadGauges {
    /// Fraction of decisions that offloaded (0.0 when none were taken).
    pub fn offload_ratio(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.offloaded as f64 / self.decisions as f64
        }
    }

    /// Fraction of offloaded ops that won (0.0 when none offloaded).
    pub fn win_ratio(&self) -> f64 {
        if self.offloaded == 0 {
            0.0
        } else {
            self.wins as f64 / self.offloaded as f64
        }
    }

    /// Merge another server's gauges into this one (sums counters, keeps the
    /// larger EWMA).
    pub fn merge(&mut self, other: &OffloadGauges) {
        self.decisions += other.decisions;
        self.offloaded += other.offloaded;
        self.local += other.local;
        self.wins += other.wins;
        self.losses += other.losses;
        self.declined += other.declined;
        self.stale_rejects += other.stale_rejects;
        self.ewma_read_ns = self.ewma_read_ns.max(other.ewma_read_ns);
        self.ewma_rpc_ns = self.ewma_rpc_ns.max(other.ewma_rpc_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_toward_observations() {
        let c = OffloadCounters::default();
        assert_eq!(c.ewma_read_ns(), 0);
        c.observe_read_ns(1_000);
        assert_eq!(c.ewma_read_ns(), 1_000, "first sample seeds the EWMA");
        for _ in 0..64 {
            c.observe_read_ns(9_000);
        }
        let v = c.ewma_read_ns();
        assert!(v > 8_000 && v <= 9_000, "EWMA converged to {v}");
        // The RPC EWMA is independent of the read EWMA.
        assert_eq!(c.ewma_rpc_ns(), 0);
        c.observe_rpc_ns(4_000);
        assert_eq!(c.ewma_rpc_ns(), 4_000, "first sample seeds the EWMA");
        assert!(c.ewma_read_ns() == v, "read EWMA untouched by RPC samples");
    }

    #[test]
    fn counters_snapshot_and_ratios() {
        let c = OffloadCounters::default();
        c.record_decision(true);
        c.record_decision(true);
        c.record_decision(false);
        c.record_win();
        c.record_loss();
        c.record_declined();
        c.record_stale_reject();
        let g = c.snapshot();
        assert_eq!(g.decisions, 3);
        assert_eq!(g.offloaded, 2);
        assert_eq!(g.local, 1);
        assert!((g.offload_ratio() - 2.0 / 3.0).abs() < 1e-9);
        assert!((g.win_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_counters_and_maxes_ewma() {
        let a = OffloadCounters::default();
        a.record_decision(true);
        a.observe_read_ns(500);
        let b = OffloadCounters::default();
        b.record_decision(false);
        b.observe_read_ns(2_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.decisions, 2);
        assert_eq!(m.offloaded, 1);
        assert_eq!(m.local, 1);
        assert_eq!(m.ewma_read_ns, 2_000);
    }

    #[test]
    fn empty_gauges_have_zero_ratios() {
        let g = OffloadGauges::default();
        assert_eq!(g.offload_ratio(), 0.0);
        assert_eq!(g.win_ratio(), 0.0);
    }
}
