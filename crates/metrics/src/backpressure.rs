//! Allocation-backpressure observability.
//!
//! When the memory pool runs near exhaustion, allocation turns from an
//! infallible fast path into a contended resource: chunk requests start
//! bouncing off full servers, the allocator falls back to recycling retired
//! addresses, and — once even the free lists are dry — operations surface a
//! typed exhaustion error instead of panicking.  These counters make that
//! regime visible so the hostile-scenario harness can gate on "the run hit
//! backpressure and survived" rather than "the run happened not to run out".

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared counters for allocation-backpressure events, owned by the memory
/// pool and bumped by every client allocator.
#[derive(Debug, Default)]
pub struct BackpressureCounters {
    chunk_denials: AtomicU64,
    exhaustion_events: AtomicU64,
    reuse_rescues: AtomicU64,
}

impl BackpressureCounters {
    /// Record one chunk request denied because a memory server was full.
    pub fn record_chunk_denial(&self) {
        self.chunk_denials.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one allocation that failed outright: every server was out of
    /// chunks and no retired address was reusable.
    pub fn record_exhaustion(&self) {
        self.exhaustion_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one allocation rescued under pressure: every server was out of
    /// chunks, but a retired address cleared quarantine and was recycled.
    pub fn record_reuse_rescue(&self) {
        self.reuse_rescues.fetch_add(1, Ordering::Relaxed);
    }

    /// Chunk requests denied by a full memory server.
    pub fn chunk_denials(&self) -> u64 {
        self.chunk_denials.load(Ordering::Relaxed)
    }

    /// Allocations that failed with a typed exhaustion error.
    pub fn exhaustion_events(&self) -> u64 {
        self.exhaustion_events.load(Ordering::Relaxed)
    }

    /// Allocations rescued by free-list reuse after every server was full.
    pub fn reuse_rescues(&self) -> u64 {
        self.reuse_rescues.load(Ordering::Relaxed)
    }

    /// Copy the counters into a plain snapshot.
    pub fn snapshot(&self) -> BackpressureSnapshot {
        BackpressureSnapshot {
            chunk_denials: self.chunk_denials(),
            exhaustion_events: self.exhaustion_events(),
            reuse_rescues: self.reuse_rescues(),
        }
    }
}

/// A point-in-time copy of [`BackpressureCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackpressureSnapshot {
    /// Chunk requests denied by a full memory server.
    pub chunk_denials: u64,
    /// Allocations that failed with a typed exhaustion error.
    pub exhaustion_events: u64,
    /// Allocations rescued by free-list reuse after every server was full.
    pub reuse_rescues: u64,
}

impl BackpressureSnapshot {
    /// Whether the run saw allocation backpressure at all.
    pub fn saw_pressure(&self) -> bool {
        self.chunk_denials > 0 || self.exhaustion_events > 0 || self.reuse_rescues > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = BackpressureCounters::default();
        assert!(!c.snapshot().saw_pressure());
        c.record_chunk_denial();
        c.record_chunk_denial();
        c.record_exhaustion();
        c.record_reuse_rescue();
        let s = c.snapshot();
        assert_eq!(s.chunk_denials, 2);
        assert_eq!(s.exhaustion_events, 1);
        assert_eq!(s.reuse_rescues, 1);
        assert!(s.saw_pressure());
    }
}
