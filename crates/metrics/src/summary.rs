//! Aggregation of per-thread measurements into paper-style result rows.

use crate::latency::LatencyHistogram;
use serde::Serialize;

/// Measurements collected by one client thread during a run.
#[derive(Debug, Clone, Serialize)]
pub struct ThreadReport {
    /// Operations completed by this thread.
    pub ops: u64,
    /// Latency histogram of those operations (virtual nanoseconds).
    pub latency: LatencyHistogram,
}

/// Combines [`ThreadReport`]s from all client threads of a run.
#[derive(Debug, Default)]
pub struct ThroughputAggregator {
    ops: u64,
    latency: LatencyHistogram,
    threads: usize,
}

impl ThroughputAggregator {
    /// Create an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one thread's report.
    pub fn add(&mut self, report: &ThreadReport) {
        self.ops += report.ops;
        self.latency.merge(&report.latency);
        self.threads += 1;
    }

    /// Finalize into a [`RunSummary`], given the virtual duration of the run.
    pub fn finish(self, elapsed_ns: u64) -> RunSummary {
        let secs = elapsed_ns as f64 / 1e9;
        let throughput = if secs > 0.0 { self.ops as f64 / secs } else { 0.0 };
        RunSummary {
            threads: self.threads,
            ops: self.ops,
            elapsed_ns,
            throughput_ops: throughput,
            p50_ns: self.latency.p50(),
            p90_ns: self.latency.p90(),
            p99_ns: self.latency.p99(),
            mean_ns: self.latency.mean(),
        }
    }
}

/// One result row: the numbers the paper reports per configuration.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RunSummary {
    /// Number of client threads.
    pub threads: usize,
    /// Total completed operations.
    pub ops: u64,
    /// Virtual duration of the measured window in nanoseconds.
    pub elapsed_ns: u64,
    /// Operations per (virtual) second.
    pub throughput_ops: f64,
    /// Median latency in virtual nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile latency in virtual nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile latency in virtual nanoseconds.
    pub p99_ns: u64,
    /// Mean latency in virtual nanoseconds.
    pub mean_ns: f64,
}

impl RunSummary {
    /// Throughput in million operations per second, as the paper reports it.
    pub fn mops(&self) -> f64 {
        self.throughput_ops / 1e6
    }

    /// Median latency in microseconds.
    pub fn p50_us(&self) -> f64 {
        self.p50_ns as f64 / 1e3
    }

    /// 90th-percentile latency in microseconds.
    pub fn p90_us(&self) -> f64 {
        self.p90_ns as f64 / 1e3
    }

    /// 99th-percentile latency in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.p99_ns as f64 / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ops: u64, base_latency: u64) -> ThreadReport {
        let mut latency = LatencyHistogram::new();
        for i in 0..ops {
            latency.record(base_latency + i % 7);
        }
        ThreadReport { ops, latency }
    }

    #[test]
    fn aggregates_threads_and_computes_mops() {
        let mut agg = ThroughputAggregator::new();
        agg.add(&report(1_000, 5_000));
        agg.add(&report(2_000, 10_000));
        // 3000 ops over 1 virtual millisecond = 3 Mops.
        let s = agg.finish(1_000_000);
        assert_eq!(s.threads, 2);
        assert_eq!(s.ops, 3_000);
        assert!((s.mops() - 3.0).abs() < 1e-9);
        assert!(s.p50_ns >= 5_000);
        assert!(s.p99_ns >= 9_000);
        assert!(s.p50_us() > 4.0);
    }

    #[test]
    fn zero_duration_gives_zero_throughput() {
        let mut agg = ThroughputAggregator::new();
        agg.add(&report(10, 100));
        let s = agg.finish(0);
        assert_eq!(s.throughput_ops, 0.0);
    }
}
