//! Exact histograms for small counts (round trips, retries) and byte sizes.
//!
//! Figure 14 of the paper reports the distribution of read retries, the CDF of
//! round trips per write operation, and the distribution of written bytes per
//! write operation.  These are exact maps rather than approximations because
//! the domains are tiny.

use serde::Serialize;
use std::collections::BTreeMap;

/// Exact histogram over small unsigned integers.
#[derive(Debug, Clone, Default, Serialize)]
pub struct CountHistogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl CountHistogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation of `value`.
    pub fn record(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of observations equal to `value` (0 when empty).
    pub fn fraction(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.counts.get(&value).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Fraction of observations less than or equal to `value`.
    pub fn cdf(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let cum: u64 = self
            .counts
            .range(..=value)
            .map(|(_, c)| *c)
            .sum();
        cum as f64 / self.total as f64
    }

    /// Smallest value whose CDF reaches `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((self.total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (&v, &c) in &self.counts {
            seen += c;
            if seen >= target {
                return v;
            }
        }
        *self.counts.keys().next_back().unwrap_or(&0)
    }

    /// Iterate over `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &CountHistogram) {
        for (&v, &c) in &other.counts {
            *self.counts.entry(v).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u128 = self.counts.iter().map(|(&v, &c)| v as u128 * c as u128).sum();
        sum as f64 / self.total as f64
    }
}

/// Exact histogram over byte sizes, a thin wrapper that adds size-oriented
/// reporting helpers.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SizeHistogram {
    inner: CountHistogram,
}

impl SizeHistogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an observation of `bytes`.
    pub fn record(&mut self, bytes: u64) {
        self.inner.record(bytes);
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.inner.total()
    }

    /// Total bytes across all observations.
    pub fn total_bytes(&self) -> u128 {
        self.inner
            .iter()
            .map(|(v, c)| v as u128 * c as u128)
            .sum()
    }

    /// Mean size in bytes.
    pub fn mean(&self) -> f64 {
        self.inner.mean()
    }

    /// Fraction of observations whose size is at most `bytes`.
    pub fn fraction_at_most(&self, bytes: u64) -> f64 {
        self.inner.cdf(bytes)
    }

    /// Fraction of observations whose size is at least `bytes`.
    pub fn fraction_at_least(&self, bytes: u64) -> f64 {
        if self.inner.total() == 0 {
            return 0.0;
        }
        if bytes == 0 {
            return 1.0;
        }
        1.0 - self.inner.cdf(bytes - 1)
    }

    /// Iterate over `(size, count)` pairs in increasing size order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.inner.iter()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &SizeHistogram) {
        self.inner.merge(&other.inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_histogram_fraction_and_cdf() {
        let mut h = CountHistogram::new();
        for v in [3u64, 3, 3, 4, 2] {
            h.record(v);
        }
        assert_eq!(h.total(), 5);
        assert!((h.fraction(3) - 0.6).abs() < 1e-9);
        assert!((h.cdf(3) - 0.8).abs() < 1e-9);
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(0.99), 4);
        assert!((h.mean() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn count_histogram_merge() {
        let mut a = CountHistogram::new();
        a.record(1);
        let mut b = CountHistogram::new();
        b.record(1);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert!((a.fraction(1) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(a.quantile(1.0), 9);
    }

    #[test]
    fn size_histogram_reports_write_amplification_shape() {
        // Mimics Figure 14(c): most writes are entry-sized, a few are node-sized.
        let mut h = SizeHistogram::new();
        for _ in 0..996 {
            h.record(18);
        }
        for _ in 0..4 {
            h.record(1024);
        }
        assert_eq!(h.total(), 1000);
        assert!(h.fraction_at_most(64) > 0.99);
        assert!((h.fraction_at_least(1024) - 0.004).abs() < 1e-9);
        assert!(h.mean() < 25.0);
        assert_eq!(h.total_bytes(), 996 * 18 + 4 * 1024);
    }

    #[test]
    fn empty_histograms_are_safe() {
        let h = CountHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.cdf(10), 0.0);
        let s = SizeHistogram::new();
        assert_eq!(s.fraction_at_least(1), 0.0);
        assert_eq!(s.fraction_at_most(1), 0.0);
    }
}
