//! Cache-coherence gauges for the fabric-delivered invalidation channel.
//!
//! Structural commits no longer scrub remote compute servers' index caches
//! synchronously: they post `Invalidate` / `RefreshTop` messages through the
//! fabric, and each subscriber applies them when it drains its inbox at an
//! operation boundary.  That turns coherence into something *measurable*:
//!
//! * **posted vs applied** — how many messages are still in flight (the
//!   stale window's population),
//! * **apply lag** — virtual time from a message's post to its application
//!   at the subscriber (the stale window's duration),
//! * **stale hits** — reads that were routed by a cache entry the committer
//!   had already invalidated but whose message had not yet been applied.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters behind [`CoherenceGauges`]; owned by the cluster
/// and bumped by the commit (post) and drain (apply) paths.
#[derive(Debug, Default)]
pub struct CoherenceCounters {
    invalidations_posted: AtomicU64,
    refreshes_posted: AtomicU64,
    applied: AtomicU64,
    local_applies: AtomicU64,
    apply_lag_ns_total: AtomicU64,
    apply_lag_ns_max: AtomicU64,
    stale_hits: AtomicU64,
}

impl CoherenceCounters {
    /// Record an `Invalidate` message posted toward a remote inbox.
    pub fn record_invalidation_posted(&self) {
        self.invalidations_posted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a `RefreshTop` message posted toward a remote inbox.
    pub fn record_refresh_posted(&self) {
        self.refreshes_posted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a message applied at a subscriber, `lag_ns` of virtual time
    /// after it was posted.
    pub fn record_applied(&self, lag_ns: u64) {
        self.applied.fetch_add(1, Ordering::Relaxed);
        self.apply_lag_ns_total.fetch_add(lag_ns, Ordering::Relaxed);
        self.apply_lag_ns_max.fetch_max(lag_ns, Ordering::Relaxed);
    }

    /// Record a committer applying a message to its *own* cache, which is
    /// synchronous and never lags (not counted in posted/applied).
    pub fn record_local_apply(&self) {
        self.local_applies.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a read served through a cache entry that a not-yet-applied
    /// coherence message had already invalidated (the traversal noticed the
    /// freed node and fell back, but the stale route was taken).
    pub fn record_stale_hit(&self) {
        self.stale_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Messages applied at subscribers so far.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// Stale hits recorded so far.
    pub fn stale_hits(&self) -> u64 {
        self.stale_hits.load(Ordering::Relaxed)
    }

    /// A plain-old-data snapshot of the current counter values.
    pub fn snapshot(&self) -> CoherenceGauges {
        CoherenceGauges {
            invalidations_posted: self.invalidations_posted.load(Ordering::Relaxed),
            refreshes_posted: self.refreshes_posted.load(Ordering::Relaxed),
            applied: self.applied.load(Ordering::Relaxed),
            local_applies: self.local_applies.load(Ordering::Relaxed),
            apply_lag_ns_total: self.apply_lag_ns_total.load(Ordering::Relaxed),
            apply_lag_ns_max: self.apply_lag_ns_max.load(Ordering::Relaxed),
            stale_hits: self.stale_hits.load(Ordering::Relaxed),
        }
    }
}

/// A plain-old-data summary of the coherence channel's behaviour over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct CoherenceGauges {
    /// `Invalidate` messages posted toward remote inboxes.
    pub invalidations_posted: u64,
    /// `RefreshTop` messages posted toward remote inboxes.
    pub refreshes_posted: u64,
    /// Messages applied at subscribers (drained and acted upon).
    pub applied: u64,
    /// Committer-side synchronous applications to the committer's own cache
    /// (never lag; not part of posted/applied).
    pub local_applies: u64,
    /// Sum of post→apply lags over applied messages (virtual ns).
    pub apply_lag_ns_total: u64,
    /// Largest single post→apply lag observed (virtual ns).
    pub apply_lag_ns_max: u64,
    /// Reads routed by a cache entry that an in-flight (posted, not yet
    /// applied) coherence message had already invalidated.
    pub stale_hits: u64,
}

impl CoherenceGauges {
    /// Total messages posted toward remote inboxes.
    pub fn posted(&self) -> u64 {
        self.invalidations_posted + self.refreshes_posted
    }

    /// Messages posted but not yet applied (still in flight or sitting
    /// undrained in an inbox).
    pub fn pending(&self) -> u64 {
        self.posted().saturating_sub(self.applied)
    }

    /// Mean post→apply lag in virtual ns (0 when nothing was applied).
    pub fn mean_apply_lag_ns(&self) -> f64 {
        if self.applied == 0 {
            0.0
        } else {
            self.apply_lag_ns_total as f64 / self.applied as f64
        }
    }

    /// Merge another snapshot into this one: counts add, the lag high-water
    /// mark takes the max.
    pub fn merge(&mut self, other: &CoherenceGauges) {
        self.invalidations_posted += other.invalidations_posted;
        self.refreshes_posted += other.refreshes_posted;
        self.applied += other.applied;
        self.local_applies += other.local_applies;
        self.apply_lag_ns_total += other.apply_lag_ns_total;
        self.apply_lag_ns_max = self.apply_lag_ns_max.max(other.apply_lag_ns_max);
        self.stale_hits += other.stale_hits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_round_trips() {
        let c = CoherenceCounters::default();
        c.record_invalidation_posted();
        c.record_invalidation_posted();
        c.record_refresh_posted();
        c.record_applied(1_000);
        c.record_applied(3_000);
        c.record_local_apply();
        c.record_stale_hit();
        let g = c.snapshot();
        assert_eq!(g.invalidations_posted, 2);
        assert_eq!(g.refreshes_posted, 1);
        assert_eq!(g.posted(), 3);
        assert_eq!(g.applied, 2);
        assert_eq!(g.pending(), 1);
        assert_eq!(g.local_applies, 1);
        assert_eq!(g.apply_lag_ns_total, 4_000);
        assert_eq!(g.apply_lag_ns_max, 3_000);
        assert_eq!(g.stale_hits, 1);
        assert!((g.mean_apply_lag_ns() - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let g = CoherenceGauges::default();
        assert_eq!(g.mean_apply_lag_ns(), 0.0);
        assert_eq!(g.pending(), 0);
    }

    #[test]
    fn merge_adds_counts_and_maxes_lag() {
        let mut a = CoherenceGauges {
            invalidations_posted: 2,
            refreshes_posted: 1,
            applied: 2,
            local_applies: 1,
            apply_lag_ns_total: 5_000,
            apply_lag_ns_max: 4_000,
            stale_hits: 1,
        };
        let b = CoherenceGauges {
            invalidations_posted: 1,
            refreshes_posted: 2,
            applied: 3,
            local_applies: 0,
            apply_lag_ns_total: 9_000,
            apply_lag_ns_max: 6_000,
            stale_hits: 0,
        };
        a.merge(&b);
        assert_eq!(a.posted(), 6);
        assert_eq!(a.applied, 5);
        assert_eq!(a.apply_lag_ns_total, 14_000);
        assert_eq!(a.apply_lag_ns_max, 6_000);
        assert_eq!(a.stale_hits, 1);
    }
}
