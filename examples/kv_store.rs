//! A multi-threaded key-value service built on the Sherman index — the kind of
//! write-intensive workload (parameter servers, data warehousing ingest) that
//! motivates the paper's introduction.
//!
//! Several client threads spread over the compute servers run a YCSB-style
//! write-intensive mix with Zipfian popularity, and the example reports
//! aggregate throughput and tail latency for Sherman and for the FG+ baseline.
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use sherman_repro::prelude::*;
use std::sync::Arc;
use std::thread;

const THREADS: usize = 6;
const OPS_PER_THREAD: usize = 300;
const KEY_SPACE: u64 = 1 << 16;

fn drive(options: TreeOptions, label: &str) -> RunSummary {
    let cluster = Cluster::new(ClusterConfig::paper_scaled(4, 3), options);
    let spec = WorkloadSpec {
        key_space: KEY_SPACE,
        bulkload_keys: KEY_SPACE / 5 * 4,
        mix: Mix::WRITE_INTENSIVE,
        distribution: KeyDistribution::ScrambledZipfian { theta: 0.99 },
        range_size: 100,
        seed: 7,
        update_fraction: 2.0 / 3.0,
    };
    cluster
        .bulkload(spec.bulkload_iter().map(|k| (k, k)))
        .expect("bulkload");

    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let cluster = Arc::clone(&cluster);
        let spec = spec.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            let mut client = cluster.client((t % 3) as u16);
            barrier.wait();
            let mut gen = spec.generator(t as u64);
            let mut latency = LatencyHistogram::new();
            for _ in 0..OPS_PER_THREAD {
                let stats = match gen.next_op() {
                    Op::Insert { key, value } => client.insert(key, value).unwrap(),
                    Op::Lookup { key } => client.lookup(key).unwrap().1,
                    Op::Delete { key } => client.delete(key).unwrap().1,
                    Op::Range { start_key, count } => {
                        client.range(start_key, count as usize).unwrap().1
                    }
                };
                latency.record(stats.latency_ns);
            }
            ThreadReport {
                ops: OPS_PER_THREAD as u64,
                latency,
            }
        }));
    }
    let mut agg = ThroughputAggregator::new();
    for h in handles {
        agg.add(&h.join().unwrap());
    }
    let summary = agg.finish(cluster.fabric().now());
    println!(
        "{label:10}  {:>8.2} Mops   p50 {:>7.1} us   p99 {:>8.1} us",
        summary.throughput_ops / 1e6,
        summary.p50_ns as f64 / 1e3,
        summary.p99_ns as f64 / 1e3,
    );
    summary
}

fn main() {
    println!(
        "KV store, write-intensive + skewed (theta=0.99), {THREADS} client threads, {} keys",
        KEY_SPACE
    );
    let sherman = drive(TreeOptions::sherman(), "Sherman");
    let baseline = drive(TreeOptions::fg_plus(), "FG+");
    println!(
        "\nSherman speed-up over the one-sided baseline: {:.1}x throughput, {:.1}x lower p99",
        sherman.throughput_ops / baseline.throughput_ops.max(1.0),
        baseline.p99_ns as f64 / sherman.p99_ns.max(1) as f64,
    );
}
