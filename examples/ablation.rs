//! A miniature version of the paper's ablation study (Figure 10): run the same
//! write-intensive, skewed workload against every rung of the technique ladder
//! (FG+ → +Combine → +On-Chip → +Hierarchical → +2-Level Ver) and print how
//! throughput and tail latency improve.
//!
//! ```text
//! cargo run --release --example ablation
//! ```

use sherman_repro::prelude::*;
use std::sync::Arc;
use std::thread;

const THREADS: usize = 6;
const OPS_PER_THREAD: usize = 250;

fn run(options: TreeOptions) -> RunSummary {
    let cluster = Cluster::new(ClusterConfig::paper_scaled(4, 3), options);
    let spec = WorkloadSpec {
        key_space: 1 << 15,
        bulkload_keys: (1 << 15) / 5 * 4,
        mix: Mix::WRITE_INTENSIVE,
        distribution: KeyDistribution::ScrambledZipfian { theta: 0.99 },
        range_size: 100,
        seed: 99,
        update_fraction: 2.0 / 3.0,
    };
    cluster
        .bulkload(spec.bulkload_iter().map(|k| (k, k)))
        .unwrap();
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let cluster = Arc::clone(&cluster);
        let spec = spec.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            let mut client = cluster.client((t % 3) as u16);
            barrier.wait();
            let mut gen = spec.generator(t as u64);
            let mut latency = LatencyHistogram::new();
            for _ in 0..OPS_PER_THREAD {
                let stats = match gen.next_op() {
                    Op::Insert { key, value } => client.insert(key, value).unwrap(),
                    Op::Lookup { key } => client.lookup(key).unwrap().1,
                    Op::Delete { key } => client.delete(key).unwrap().1,
                    Op::Range { start_key, count } => {
                        client.range(start_key, count as usize).unwrap().1
                    }
                };
                latency.record(stats.latency_ns);
            }
            ThreadReport {
                ops: OPS_PER_THREAD as u64,
                latency,
            }
        }));
    }
    let mut agg = ThroughputAggregator::new();
    for h in handles {
        agg.add(&h.join().unwrap());
    }
    agg.finish(cluster.fabric().now())
}

fn main() {
    println!("Ablation (write-intensive, Zipfian 0.99, {THREADS} threads)\n");
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "configuration", "Mops", "p50 (us)", "p99 (us)"
    );
    let mut first: Option<RunSummary> = None;
    for (label, options) in TreeOptions::ablation_ladder() {
        let s = run(options);
        println!(
            "{:<16} {:>12.3} {:>12.1} {:>12.1}",
            label,
            s.throughput_ops / 1e6,
            s.p50_ns as f64 / 1e3,
            s.p99_ns as f64 / 1e3
        );
        match &first {
            None => first = Some(s),
            Some(base) if label == "+2-Level Ver" => {
                println!(
                    "\nSherman vs FG+: {:.1}x throughput, {:.1}x lower p99 latency",
                    s.throughput_ops / base.throughput_ops.max(1.0),
                    base.p99_ns as f64 / s.p99_ns.max(1) as f64
                );
            }
            Some(_) => {}
        }
    }
}
