//! Range-scan analytics over a time-ordered fact table — the range-query use
//! case behind Figure 12: leaf nodes are fetched with parallel `RDMA_READ`s
//! and validated with versions while a writer keeps appending.
//!
//! The example bulkloads "orders" keyed by timestamp, spawns one ingest thread
//! that appends new orders, and runs windowed scans that compute a running
//! revenue aggregate per window.
//!
//! ```text
//! cargo run --release --example range_scan_analytics
//! ```

use sherman_repro::prelude::*;
use std::sync::Arc;
use std::thread;

const ORDERS: u64 = 80_000;
const WINDOW: usize = 500;
const SCANS: usize = 40;

fn main() {
    let cluster = Cluster::new(ClusterConfig::paper_scaled(4, 2), TreeOptions::sherman());
    // Key = order timestamp (microseconds), value = order amount in cents.
    cluster
        .bulkload((0..ORDERS).map(|ts| (ts * 1_000, (ts % 997) * 3 + 100)))
        .expect("bulkload");
    println!("bulkloaded {ORDERS} orders");

    // Ingest thread: appends fresh orders past the bulkloaded time range.
    let ingest_cluster = Arc::clone(&cluster);
    let ingest = thread::spawn(move || {
        let mut client = ingest_cluster.client(1);
        let mut appended = 0u64;
        for i in 0..2_000u64 {
            let ts = (ORDERS + i) * 1_000;
            client.insert(ts, 250).expect("append order");
            appended += 1;
        }
        appended
    });

    // Analytics thread: windowed scans with a revenue aggregate.
    let scan_cluster = Arc::clone(&cluster);
    let analytics = thread::spawn(move || {
        let mut client = scan_cluster.client(0);
        let mut total_entries = 0usize;
        let mut total_revenue = 0u64;
        let mut scan_latency = LatencyHistogram::new();
        for w in 0..SCANS {
            let start_ts = (w as u64 * (ORDERS / SCANS as u64)) * 1_000;
            let (window, stats) = client.range(start_ts, WINDOW).expect("scan");
            total_entries += window.len();
            total_revenue += window.iter().map(|&(_, amount)| amount).sum::<u64>();
            scan_latency.record(stats.latency_ns);
        }
        (total_entries, total_revenue, scan_latency)
    });

    let appended = ingest.join().unwrap();
    let (entries, revenue, latency) = analytics.join().unwrap();

    println!("ingested {appended} new orders concurrently with the scans");
    println!(
        "{SCANS} windowed scans of {WINDOW} orders: {entries} rows, total revenue {} cents",
        revenue
    );
    println!(
        "scan latency: p50 {:.1} us, p99 {:.1} us (virtual time)",
        latency.p50() as f64 / 1e3,
        latency.p99() as f64 / 1e3
    );
    assert!(entries >= SCANS * WINDOW / 2, "scans should return full windows");
}
