//! Quickstart: stand up a simulated disaggregated-memory cluster, bulkload a
//! Sherman tree, and run the basic operations from a single client thread.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sherman_repro::prelude::*;

fn main() {
    // A cluster with 4 memory servers and 2 compute servers, default 1 KB
    // nodes, full Sherman techniques (command combination + HOCL + two-level
    // versions).
    let config = ClusterConfig::paper_scaled(4, 2);
    let cluster = Cluster::new(config, TreeOptions::sherman());

    // Bulkload 100k sensor readings keyed by id, 80 % leaf occupancy.
    println!("bulkloading 100,000 entries ...");
    cluster
        .bulkload((0..100_000u64).map(|id| (id, id * 10)))
        .expect("bulkload");

    // A client thread on compute server 0.
    let mut client = cluster.client(0);

    // Point lookup.
    let (value, stats) = client.lookup(42_000).expect("lookup");
    println!(
        "lookup(42000) -> {:?}   [{} round trip(s), {:.1} us, cache hit: {}]",
        value,
        stats.round_trips,
        stats.latency_ns as f64 / 1e3,
        stats.cache_hit
    );

    // Insert / update: with two-level versions only the 19-byte entry is
    // written back, combined with the lock release in one doorbell batch.
    let stats = client.insert(42_000, 777).expect("insert");
    println!(
        "insert(42000, 777)      [{} round trip(s), {} bytes written]",
        stats.round_trips, stats.bytes_written
    );
    assert_eq!(client.lookup(42_000).unwrap().0, Some(777));

    // Insert a brand-new key (may split a leaf).
    client.insert(1_000_000, 1).expect("insert new key");
    assert_eq!(client.lookup(1_000_000).unwrap().0, Some(1));

    // Delete.
    let (existed, _) = client.delete(42_000).expect("delete");
    println!("delete(42000) existed = {existed}");
    assert_eq!(client.lookup(42_000).unwrap().0, None);

    // Range scan: 20 entries starting at key 10_000.
    let (scan, stats) = client.range(10_000, 20).expect("range");
    println!(
        "range(10000, 20) -> {} entries in {:.1} us, first = {:?}, last = {:?}",
        scan.len(),
        stats.latency_ns as f64 / 1e3,
        scan.first(),
        scan.last()
    );

    // Index-cache effectiveness so far.
    let cache = cluster.cache(0);
    println!(
        "index cache: {} level-1 entries, hit ratio {:.1}%",
        cache.len(),
        cache.stats().hit_ratio() * 100.0
    );
    println!("virtual time elapsed: {:.1} us", client.now() as f64 / 1e3);
}
