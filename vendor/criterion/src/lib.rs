//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical machinery.
//! Each benchmark runs its closure `sample_size` times and prints the mean
//! per-iteration time.

use std::fmt::Display;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), 10, &mut f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Finish the group (no-op in this stub; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples,
        total_nanos: 0,
        total_iters: 0,
    };
    f(&mut bencher);
    if bencher.total_iters > 0 {
        let per_iter = bencher.total_nanos as f64 / bencher.total_iters as f64;
        println!("bench {label}: {per_iter:.1} ns/iter ({} iters)", bencher.total_iters);
    } else {
        println!("bench {label}: no iterations recorded");
    }
}

/// Identifier combining a benchmark name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    total_iters: u64,
}

impl Bencher {
    /// Time `routine`, running it `sample_size` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total_nanos += start.elapsed().as_nanos();
        self.total_iters += self.samples as u64;
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
