//! Offline stand-in for `serde_derive`.
//!
//! The workspace cannot reach crates.io, so the real serde machinery is
//! replaced by a pair of no-op derives.  The sibling `serde` stub provides
//! blanket implementations of its `Serialize` / `Deserialize` marker traits,
//! so expanding to an empty token stream is sufficient for every
//! `#[derive(Serialize, Deserialize)]` in the tree.

use proc_macro::TokenStream;

/// No-op derive for `serde::Serialize` (blanket-implemented by the stub).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op derive for `serde::Deserialize` (blanket-implemented by the stub).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
