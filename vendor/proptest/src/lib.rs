//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's integration
//! tests use: the [`proptest!`] macro (with `#![proptest_config(..)]`, `pat in
//! strategy` bindings and plain `name: Type` bindings), range / tuple /
//! mapped / boxed strategies, `prop::collection::vec`, `prop::sample::select`,
//! [`prop_oneof!`] and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **Value-based shrinking.**  A failing case is shrunk by re-running the
//!   property on candidate simplifications proposed by
//!   [`strategy::Strategy::shrink`]: integer ranges walk a halving-distance
//!   ladder toward their lower bound (binary search, not linear decrement),
//!   vectors drop halves and single elements and shrink elements in place,
//!   and tuples shrink component-wise.  Mapped / union / sampled strategies
//!   do not shrink through their closures (candidates come from the
//!   enclosing vector / tuple structure instead).  The shrink loop is
//!   bounded by `max_shrink_iters` in [`test_runner::ProptestConfig`]; the
//!   property finally panics with the minimal failing input.
//! * **Deterministic seeding.**  Each property derives its RNG seed from the
//!   test function's name, so failures reproduce exactly across runs.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Propose simplifications of a failing `value`, most aggressive
        /// first.  The shrink loop keeps the first candidate that still
        /// fails and asks again, so returning an empty list (the default)
        /// just means the value is already minimal for this strategy.
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let _ = value;
            Vec::new()
        }

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    ///
    /// Does not shrink: the mapping closure is not invertible, so candidate
    /// simplifications of the *output* cannot be derived from the input
    /// strategy.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy returned by [`Strategy::boxed`].
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
        fn shrink(&self, value: &V) -> Vec<V> {
            self.0.shrink(value)
        }
    }

    /// Uniform choice among several strategies (built by [`crate::prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build a union over `options`; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
        // No shrink: the arm that produced a value is not recorded, so no
        // single arm can be asked for candidates.
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// The empty strategy tuple (used by zero-parameter properties).
    impl Strategy for () {
        type Value = ();
        fn generate(&self, _rng: &mut TestRng) -> Self::Value {}
    }

    /// Candidate ladder toward `start`: distances halve from the full span
    /// down to 1, so the shrink loop binary-searches the smallest failing
    /// value in `O(log²)` property executions instead of a linear descent.
    fn shrink_ladder_u64(start_bits: u64, value_bits: u64) -> Vec<u64> {
        let dist = value_bits.wrapping_sub(start_bits);
        let mut out = Vec::new();
        let mut d = dist;
        while d > 0 {
            out.push(value_bits.wrapping_sub(d));
            d /= 2;
        }
        out
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.int_in(self.start, self.end)
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    use $crate::test_runner::IntBits;
                    shrink_ladder_u64(self.start.to_bits(), value.to_bits())
                        .into_iter()
                        .map(<$t>::from_bits)
                        .collect()
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.int_in_inclusive(*self.start(), *self.end())
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    use $crate::test_runner::IntBits;
                    shrink_ladder_u64(self.start().to_bits(), value.to_bits())
                        .into_iter()
                        .map(<$t>::from_bits)
                        .collect()
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
        fn shrink(&self, value: &f64) -> Vec<f64> {
            // Halve the distance to the lower bound; skip candidates that no
            // longer move (denormal-small distances) so the loop terminates.
            let mut out = Vec::new();
            let mut d = value - self.start;
            while d > 0.0 {
                let candidate = value - d;
                if candidate >= *value {
                    break;
                }
                out.push(candidate);
                d /= 2.0;
                if out.len() >= 64 {
                    break;
                }
            }
            out
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+)
            where
                $($s::Value: Clone,)+
            {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for candidate in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = candidate;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

/// `any::<T>()` and the `Arbitrary` trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for "any `T`".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.int_in(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min_len = self.size.start;
            let n = v.len();
            let mut out = Vec::new();
            // Structural shrinks first (aggressive length cuts, then single
            // removals), element-wise shrinks after.
            if n > min_len {
                let half = n / 2;
                if half >= min_len {
                    out.push(v[..half].to_vec());
                    out.push(v[n - half..].to_vec());
                }
                for i in 0..n {
                    let mut shorter = Vec::with_capacity(n - 1);
                    shorter.extend_from_slice(&v[..i]);
                    shorter.extend_from_slice(&v[i + 1..]);
                    out.push(shorter);
                }
            }
            for i in 0..n {
                for candidate in self.element.shrink(&v[i]) {
                    let mut next = v.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// Uniformly select one of `options`; panics if empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over an empty list");
        Select { options }
    }
}

/// Test-runner configuration, RNG, and the generate → shrink → report loop.
pub mod test_runner {
    use crate::strategy::Strategy;
    use std::cell::Cell;

    /// Per-property configuration, consumed by the [`crate::proptest!`] macro.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Upper bound on property re-executions spent shrinking one failure.
        pub max_shrink_iters: u32,
        /// Accepted for API compatibility; failures always panic immediately.
        pub max_local_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 1024,
                max_local_rejects: 65_536,
            }
        }
    }

    /// Deterministic splitmix64 RNG used to generate property inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from the property function's name.
        pub fn from_name(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: hash }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform integer draw in `[start, end)`, generic over the int width
        /// via two's-complement wrapping arithmetic.
        pub fn int_in<T>(&mut self, start: T, end: T) -> T
        where
            T: Copy + IntBits + PartialOrd,
        {
            assert!(start < end, "empty or inverted range");
            let span = end.to_bits().wrapping_sub(start.to_bits());
            let draw = self.next_u64() % span;
            T::from_bits(start.to_bits().wrapping_add(draw))
        }

        /// Uniform integer draw in `[start, end]` (inclusive of both ends).
        pub fn int_in_inclusive<T>(&mut self, start: T, end: T) -> T
        where
            T: Copy + IntBits + PartialOrd,
        {
            assert!(start <= end, "inverted range");
            let span = end.to_bits().wrapping_sub(start.to_bits()).wrapping_add(1);
            // span == 0 means the range covers the full 64-bit domain.
            let draw = if span == 0 {
                self.next_u64()
            } else {
                self.next_u64() % span
            };
            T::from_bits(start.to_bits().wrapping_add(draw))
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Two's-complement round-tripping through `u64`, so one uniform-range
    /// implementation serves every integer width.
    pub trait IntBits {
        /// Reinterpret as `u64` bits (sign-extended for signed types).
        fn to_bits(self) -> u64;
        /// Reinterpret from `u64` bits (truncating).
        fn from_bits(bits: u64) -> Self;
    }

    macro_rules! impl_int_bits {
        ($($t:ty),*) => {$(
            impl IntBits for $t {
                fn to_bits(self) -> u64 { self as i64 as u64 }
                fn from_bits(bits: u64) -> Self { bits as $t }
            }
        )*};
    }
    impl_int_bits!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    thread_local! {
        /// While set, this thread's panics are swallowed by the quiet hook:
        /// candidate executions during detection/shrinking would otherwise
        /// print one backtrace per attempt.
        static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
    }

    /// Install (once per process) a panic hook that respects
    /// [`QUIET_PANICS`]; panics from other threads are unaffected because
    /// the flag is thread-local.
    fn install_quiet_hook() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if !QUIET_PANICS.with(|q| q.get()) {
                    previous(info);
                }
            }));
        });
    }

    /// Run the property body on one input, quietly capturing a panic as the
    /// stringified payload.
    fn run_case<V: Clone, F: Fn(V)>(body: &F, value: &V) -> Result<(), String> {
        install_quiet_hook();
        QUIET_PANICS.with(|q| q.set(true));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value.clone())));
        QUIET_PANICS.with(|q| q.set(false));
        result.map_err(|payload| {
            payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".into())
        })
    }

    /// Shrink `failing` to a value that is minimal under `strategy`'s
    /// candidate order: repeatedly adopt the first candidate that still
    /// satisfies `fails`, stopping when no candidate does (or the iteration
    /// budget runs out).  Returns the minimal value and the number of
    /// candidate executions spent.
    pub fn minimize<S>(
        strategy: &S,
        failing: S::Value,
        max_iters: u32,
        fails: impl Fn(&S::Value) -> bool,
    ) -> (S::Value, u32)
    where
        S: Strategy,
        S::Value: Clone,
    {
        let mut current = failing;
        let mut spent = 0u32;
        'outer: while spent < max_iters {
            for candidate in strategy.shrink(&current) {
                if spent >= max_iters {
                    break 'outer;
                }
                spent += 1;
                if fails(&candidate) {
                    current = candidate;
                    continue 'outer;
                }
            }
            break;
        }
        (current, spent)
    }

    /// Drive one property: generate `config.cases` inputs, and on the first
    /// failure shrink it to a minimal counterexample and panic with it.
    ///
    /// This is the function the [`crate::proptest!`] macro expands to; the
    /// strategy is the tuple of all the property's bindings and `body` is the
    /// property body as a closure over that tuple.
    pub fn run_property<S, F>(name: &str, config: ProptestConfig, strategy: S, body: F)
    where
        S: Strategy,
        S::Value: Clone + std::fmt::Debug,
        F: Fn(S::Value),
    {
        let mut rng = TestRng::from_name(name);
        for _ in 0..config.cases {
            let value = strategy.generate(&mut rng);
            if run_case(&body, &value).is_ok() {
                continue;
            }
            let (minimal, spent) = minimize(&strategy, value, config.max_shrink_iters, |v| {
                run_case(&body, v).is_err()
            });
            let cause = match run_case(&body, &minimal) {
                Err(message) => message,
                Ok(()) => "(failure did not reproduce on the minimal input)".into(),
            };
            panic!(
                "proptest: property `{name}` failed.\n\
                 minimal failing input (after {spent} shrink executions): {minimal:?}\n\
                 cause: {cause}"
            );
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced access to strategy modules (`prop::collection`, `prop::sample`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Define property tests.  See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::__proptest_run! {
                config = __config;
                name = (concat!(module_path!(), "::", stringify!($name)));
                strategies = ();
                patterns = ();
                body = $body;
                $($params)*
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Tail-recursive parameter muncher: accumulates one strategy expression and
/// one closure pattern per binding, then hands the assembled tuple strategy
/// and tuple-pattern closure to `run_property`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    (config = $cfg:ident; name = ($name:expr);
     strategies = ($($strat:expr,)*); patterns = ($($pat:pat,)*);
     body = $body:block;
    ) => {
        $crate::test_runner::run_property(
            $name,
            $cfg,
            ($($strat,)*),
            |($($pat,)*)| $body,
        )
    };
    (config = $cfg:ident; name = ($name:expr);
     strategies = ($($strat:expr,)*); patterns = ($($pat:pat,)*);
     body = $body:block;
     $p:pat in $s:expr, $($restparams:tt)*
    ) => {
        $crate::__proptest_run! {
            config = $cfg; name = ($name);
            strategies = ($($strat,)* $s,); patterns = ($($pat,)* $p,);
            body = $body;
            $($restparams)*
        }
    };
    (config = $cfg:ident; name = ($name:expr);
     strategies = ($($strat:expr,)*); patterns = ($($pat:pat,)*);
     body = $body:block;
     $p:pat in $s:expr
    ) => {
        $crate::__proptest_run! {
            config = $cfg; name = ($name);
            strategies = ($($strat,)* $s,); patterns = ($($pat,)* $p,);
            body = $body;
        }
    };
    (config = $cfg:ident; name = ($name:expr);
     strategies = ($($strat:expr,)*); patterns = ($($pat:pat,)*);
     body = $body:block;
     $arg:ident : $ty:ty, $($restparams:tt)*
    ) => {
        $crate::__proptest_run! {
            config = $cfg; name = ($name);
            strategies = ($($strat,)* $crate::arbitrary::any::<$ty>(),);
            patterns = ($($pat,)* $arg,);
            body = $body;
            $($restparams)*
        }
    };
    (config = $cfg:ident; name = ($name:expr);
     strategies = ($($strat:expr,)*); patterns = ($($pat:pat,)*);
     body = $body:block;
     $arg:ident : $ty:ty
    ) => {
        $crate::__proptest_run! {
            config = $cfg; name = ($name);
            strategies = ($($strat,)* $crate::arbitrary::any::<$ty>(),);
            patterns = ($($pat,)* $arg,);
            body = $body;
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property assertion; panics like `assert!` (the runner catches the panic
/// and shrinks the failing input).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion; panics like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion; panics like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::minimize;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0.25f64..0.75, flag: bool) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            let _ = flag;
        }

        #[test]
        fn vec_and_oneof_compose(
            v in prop::collection::vec(any::<u8>(), 1..16),
            pick in prop_oneof![1u64..10, 100u64..110],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 16);
            prop_assert!((1..10).contains(&pick) || (100..110).contains(&pick));
        }

        #[test]
        fn map_and_select_compose(
            doubled in (1u64..50).prop_map(|x| x * 2),
            choice in prop::sample::select(vec![3usize, 5, 7]),
        ) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!([3, 5, 7].contains(&choice));
        }
    }

    // ------------------------------------------------------------------
    // Shrinking meta-tests: a seeded failure must shrink to the *minimal*
    // counterexample, and in far fewer executions than a linear descent.
    // ------------------------------------------------------------------

    #[test]
    fn integer_failure_shrinks_to_minimal_counterexample() {
        // Property "x < 17" first fails at 17; whatever large value was
        // generated must shrink exactly to it.
        let strategy = 0u64..10_000;
        let (minimal, spent) = minimize(&strategy, 9_731, 10_000, |&v| v >= 17);
        assert_eq!(minimal, 17);
        assert!(
            spent <= 250,
            "halving ladder should binary-search, not walk linearly: {spent} executions"
        );
    }

    #[test]
    fn inclusive_range_shrinks_toward_its_lower_bound() {
        let strategy = 5u32..=5_000;
        let (minimal, _) = minimize(&strategy, 4_999, 10_000, |&v| v >= 5);
        assert_eq!(minimal, 5, "an always-failing property shrinks to the range minimum");
    }

    #[test]
    fn vec_failure_shrinks_to_minimal_counterexample() {
        // Property "no element >= 60": the minimal counterexample is the
        // one-element vector [60] — shorter vectors pass, and 60 is the
        // smallest failing element.
        let strategy = prop::collection::vec(0u64..100, 0..50);
        let failing = vec![3, 99, 0, 62, 7, 81];
        let (minimal, _) =
            minimize(&strategy, failing, 100_000, |v| v.iter().any(|&x| x >= 60));
        assert_eq!(minimal, vec![60]);
    }

    #[test]
    fn tuple_components_shrink_independently() {
        let strategy = (0u64..1_000, 0u64..1_000);
        let (minimal, _) =
            minimize(&strategy, (912, 344), 100_000, |&(a, b)| a >= 30 && b >= 7);
        assert_eq!(minimal, (30, 7));
    }

    #[test]
    fn run_property_panics_with_the_minimal_input() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_property(
                "meta::always_fails_at_17",
                ProptestConfig { cases: 64, ..ProptestConfig::default() },
                0u64..10_000,
                |x| assert!(x < 17, "x must stay below 17"),
            );
        });
        let payload = result.expect_err("the property must fail");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("panic carries a formatted message");
        assert!(
            message.contains("minimal failing input") && message.contains(": 17"),
            "report must name the minimal input, got: {message}"
        );
        assert!(message.contains("x must stay below 17"), "report keeps the cause: {message}");
    }

    #[test]
    fn shrink_candidates_respect_range_bounds() {
        use crate::strategy::Strategy;
        let strategy = 100u64..200;
        for candidate in strategy.shrink(&173) {
            assert!((100..200).contains(&candidate));
            assert!(candidate < 173, "candidates only simplify");
        }
        assert!(strategy.shrink(&100).is_empty(), "the minimum is already minimal");
    }
}
