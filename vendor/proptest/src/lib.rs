//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's integration
//! tests use: the [`proptest!`] macro (with `#![proptest_config(..)]`, `pat in
//! strategy` bindings and plain `name: Type` bindings), range / tuple /
//! mapped / boxed strategies, `prop::collection::vec`, `prop::sample::select`,
//! [`prop_oneof!`] and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.**  A failing case panics with the generated inputs in the
//!   panic message (via the normal assert formatting); `max_shrink_iters` in
//!   [`test_runner::ProptestConfig`] is accepted and ignored.
//! * **Deterministic seeding.**  Each property derives its RNG seed from the
//!   test function's name, so failures reproduce exactly across runs.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy returned by [`Strategy::boxed`].
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Uniform choice among several strategies (built by [`crate::prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build a union over `options`; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.int_in(self.start, self.end)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.int_in_inclusive(*self.start(), *self.end())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

/// `any::<T>()` and the `Arbitrary` trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for "any `T`".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.int_in(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// Uniformly select one of `options`; panics if empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over an empty list");
        Select { options }
    }
}

/// Test-runner configuration and RNG.
pub mod test_runner {
    /// Per-property configuration, consumed by the [`crate::proptest!`] macro.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Accepted for API compatibility; this stub never shrinks.
        pub max_shrink_iters: u32,
        /// Accepted for API compatibility; failures always panic immediately.
        pub max_local_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 1024,
                max_local_rejects: 65_536,
            }
        }
    }

    /// Deterministic splitmix64 RNG used to generate property inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from the property function's name.
        pub fn from_name(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: hash }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform integer draw in `[start, end)`, generic over the int width
        /// via two's-complement wrapping arithmetic.
        pub fn int_in<T>(&mut self, start: T, end: T) -> T
        where
            T: Copy + IntBits + PartialOrd,
        {
            assert!(start < end, "empty or inverted range");
            let span = end.to_bits().wrapping_sub(start.to_bits());
            let draw = self.next_u64() % span;
            T::from_bits(start.to_bits().wrapping_add(draw))
        }

        /// Uniform integer draw in `[start, end]` (inclusive of both ends).
        pub fn int_in_inclusive<T>(&mut self, start: T, end: T) -> T
        where
            T: Copy + IntBits + PartialOrd,
        {
            assert!(start <= end, "inverted range");
            let span = end.to_bits().wrapping_sub(start.to_bits()).wrapping_add(1);
            // span == 0 means the range covers the full 64-bit domain.
            let draw = if span == 0 {
                self.next_u64()
            } else {
                self.next_u64() % span
            };
            T::from_bits(start.to_bits().wrapping_add(draw))
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Two's-complement round-tripping through `u64`, so one uniform-range
    /// implementation serves every integer width.
    pub trait IntBits {
        /// Reinterpret as `u64` bits (sign-extended for signed types).
        fn to_bits(self) -> u64;
        /// Reinterpret from `u64` bits (truncating).
        fn from_bits(bits: u64) -> Self;
    }

    macro_rules! impl_int_bits {
        ($($t:ty),*) => {$(
            impl IntBits for $t {
                fn to_bits(self) -> u64 { self as i64 as u64 }
                fn from_bits(bits: u64) -> Self { bits as $t }
            }
        )*};
    }
    impl_int_bits!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced access to strategy modules (`prop::collection`, `prop::sample`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Define property tests.  See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $crate::__proptest_bind! { __rng; $($params)* }
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $arg:ident : $ty:ty, $($rest:tt)*) => {
        let $arg = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
    ($rng:ident; $arg:ident : $ty:ty) => {
        let $arg = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property assertion; this stub panics (no shrinking), like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion; this stub panics, like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion; this stub panics, like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0.25f64..0.75, flag: bool) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            let _ = flag;
        }

        #[test]
        fn vec_and_oneof_compose(
            v in prop::collection::vec(any::<u8>(), 1..16),
            pick in prop_oneof![1u64..10, 100u64..110],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 16);
            prop_assert!((1..10).contains(&pick) || (100..110).contains(&pick));
        }

        #[test]
        fn map_and_select_compose(
            doubled in (1u64..50).prop_map(|x| x * 2),
            choice in prop::sample::select(vec![3usize, 5, 7]),
        ) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!([3, 5, 7].contains(&choice));
        }
    }
}
