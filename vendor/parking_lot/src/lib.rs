//! Offline stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync` primitives exposing the (non-poisoning)
//! parking_lot API surface this workspace uses: `Mutex::lock` /
//! `Mutex::try_lock`, `RwLock::read` / `RwLock::write`, and
//! `Condvar::wait` / `notify_one` / `notify_all`.  Poisoning is translated to
//! a panic, which matches parking_lot's behaviour closely enough for this
//! codebase (a panicked worker thread aborts the test anyway).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally holds an `Option` so that [`Condvar::wait`] can temporarily take
/// the std guard out (std's condvar consumes and returns guards by value).
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard taken during condvar wait")
    }
}

/// A reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
/// RAII write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable (facade over `std::sync::Condvar` working with the
/// wrapper [`MutexGuard`]).
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guard's mutex and wait for a notification,
    /// re-acquiring the mutex before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Wake one thread blocked on this condvar.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every thread blocked on this condvar.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}
