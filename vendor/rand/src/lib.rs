//! Offline stand-in for `rand`.
//!
//! Implements the small surface this workspace uses — `Rng::gen`,
//! `Rng::gen_range`, `Rng::gen_bool`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, `rngs::ThreadRng` and `thread_rng()` — on top of a
//! splitmix64 core.  Splitmix64 passes the statistical bar the workload and
//! cache tests need (zipfian skew checks over 10^5 draws); it is not, and does
//! not need to be, cryptographic.

use std::cell::RefCell;
use std::ops::Range;
use std::rc::Rc;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw a uniform sample from `range` using `rng`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on an empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as $t;
                range.start.wrapping_add(draw)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range on an empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset used
/// in this workspace).
pub trait StandardSample {
    /// Draw a sample using `rng`.
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardSample for u64 {
    #[inline]
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardSample for u32 {
    #[inline]
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}
impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The random-number-generator trait (merged `RngCore` + `Rng` surface).
pub trait Rng {
    /// Next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draw a value from the standard distribution for `T`.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draw a value uniformly from `range` (half-open).
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Return `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::standard_sample(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::*;

    /// Deterministic seedable generator (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up step decorrelates small consecutive seeds.
            let mut state = seed ^ 0x5DEE_CE66_D1CE_4E5B;
            let _ = splitmix64(&mut state);
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    /// Handle to a lazily-initialized thread-local generator.
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        state: Rc<RefCell<u64>>,
    }

    thread_local! {
        static THREAD_RNG_STATE: Rc<RefCell<u64>> = {
            // Seed from the thread id and a monotonically bumped global so
            // distinct threads (and repeated runs in one process) diverge.
            use std::sync::atomic::{AtomicU64, Ordering};
            static COUNTER: AtomicU64 = AtomicU64::new(0x0DDB_1A5E_5BAD_5EED);
            let unique = COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
            let mut state = unique ^ {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                std::hash::Hash::hash(&std::thread::current().id(), &mut h);
                std::hash::Hasher::finish(&h)
            };
            let _ = splitmix64(&mut state);
            Rc::new(RefCell::new(state))
        };
    }

    impl ThreadRng {
        pub(crate) fn current() -> Self {
            ThreadRng {
                state: THREAD_RNG_STATE.with(Rc::clone),
            }
        }
    }

    impl Rng for ThreadRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state.borrow_mut())
        }
    }
}

pub use rngs::StdRng;

/// Return the calling thread's lazily-initialized generator.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::current()
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{StdRng, ThreadRng};
    pub use super::{thread_rng, Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn uniform_int_covers_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 16];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..16)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
