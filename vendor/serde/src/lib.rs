//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde as a derive on plain data structs (no code in
//! the tree actually serializes anything — there is no `serde_json` in the
//! dependency set).  This stub therefore reduces serde to two marker traits
//! with blanket implementations, plus re-exports of the no-op derives from the
//! sibling `serde_derive` stub so that `#[derive(Serialize, Deserialize)]`
//! keeps compiling unchanged.  If a later PR needs real serialization, vendor
//! the actual crates and delete this stub — the API surface is a strict
//! subset, so nothing downstream has to change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Minimal `serde::de` module so `serde::de::DeserializeOwned` paths resolve.
pub mod de {
    pub use super::DeserializeOwned;
}
